// Figure 6: the Libra VOP cost model — read and write VOP cost-per-byte
// curves derived from the calibrated performance curves. Writes cost ~3x
// reads at 1KB; the gap narrows with IOP size.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace libra::bench;
  using libra::ssd::IoType;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const auto profile = libra::ssd::Intel320Profile();
  libra::iosched::ExactCostModel model(TableFor(profile));

  Section(args, "Figure 6: Libra IO cost model (" + profile.name + ")");
  libra::metrics::Table out({"size_kb", "read_vop_cost", "write_vop_cost",
                             "read_cost_per_kb", "write_cost_per_kb",
                             "write_over_read"});
  for (uint32_t kb : libra::ssd::kSweepSizesKb) {
    const uint32_t size = kb * 1024;
    const double rc = model.Cost(IoType::kRead, size);
    const double wc = model.Cost(IoType::kWrite, size);
    out.AddNumericRow(std::to_string(kb),
                      {rc, wc, rc / kb, wc / kb, wc / rc}, 3);
  }
  Emit(args, out);
  if (!args.csv) {
    std::printf("max VOP/s: %.0f\n", model.max_vops());
  }
  return 0;
}
