// Multi-tenant isolation: three tenants with 3:2:1 reservations hammer the
// node concurrently; Libra splits throughput by reservation. When the
// largest tenant goes idle halfway through, its share flows to the others
// (work conservation) instead of lying fallow — the paper's core advantage
// over rate limiting.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/calibration.h"
#include "src/workload/workload.h"

using namespace libra;

int main() {
  const ssd::DeviceProfile profile = ssd::Intel320Profile();
  ssd::CalibrationOptions copt;
  copt.measure = 500 * kMillisecond;
  const ssd::CalibrationTable table = ssd::Calibrate(profile, copt);

  sim::EventLoop loop;
  kv::NodeOptions options;
  options.device_profile = profile;
  options.calibration = table;
  options.prefill_bytes = 0;
  kv::StorageNode node(loop, options);

  // Reservations in normalized 1KB requests/s, 3:2:1.
  struct TenantCfg {
    iosched::TenantId id;
    double get_rps;
    double put_rps;
  };
  const TenantCfg tenants[] = {
      {1, 6000.0, 1500.0}, {2, 4000.0, 1000.0}, {3, 2000.0, 500.0}};

  std::vector<std::unique_ptr<workload::KvTenantWorkload>> workloads;
  for (const TenantCfg& t : tenants) {
    (void)node.AddTenant(t.id, {t.get_rps, t.put_rps});
    workload::KvWorkloadSpec spec;
    spec.get_fraction = 0.8;
    spec.get_size = {4096.0, 0.0};
    spec.put_size = {8192.0, 0.0};
    spec.live_bytes_target = 8 * kMiB;
    spec.workers = 8;
    workloads.push_back(std::make_unique<workload::KvTenantWorkload>(
        loop, node, t.id, spec, 7 * t.id));
  }
  {
    sim::TaskGroup preload(loop);
    for (auto& wl : workloads) {
      preload.Spawn(wl->Preload());
    }
    loop.Run();
  }
  node.Start();

  const SimTime start = loop.Now();
  const SimTime half = start + 10 * kSecond;
  const SimTime end = start + 20 * kSecond;

  auto vops_of = [&](iosched::TenantId id) {
    return node.tracker().Stats(id).vops;
  };
  double at_half[4] = {0, 0, 0, 0};
  loop.ScheduleAt(half, [&] {
    for (const TenantCfg& t : tenants) {
      at_half[t.id] = vops_of(t.id);
    }
  });

  {
    sim::TaskGroup group(loop);
    // Tenant 1 (largest reservation) stops at the halfway mark.
    workloads[0]->Start(group, half);
    workloads[1]->Start(group, end);
    workloads[2]->Start(group, end);
    // The started policy keeps a timer pending forever: bound the run,
    // stop it, then drain the finite remainder.
    loop.RunUntil(end + kSecond);
    node.Stop();
    loop.Run();
  }

  std::printf("phase 1 (all three backlogged, 3:2:1 reservations):\n");
  for (const TenantCfg& t : tenants) {
    std::printf("  tenant %u: %8.0f VOP/s\n", t.id, at_half[t.id] / 10.0);
  }
  std::printf("phase 2 (tenant 1 idle — its share is redistributed):\n");
  for (const TenantCfg& t : tenants) {
    std::printf("  tenant %u: %8.0f VOP/s\n", t.id,
                (vops_of(t.id) - at_half[t.id]) / 10.0);
  }
  std::printf(
      "\nExpected: phase-1 VOP rates split ~3:2:1; in phase 2 tenants 2 and "
      "3 absorb tenant 1's share at a ~2:1 ratio (work conservation).\n");
  return 0;
}
