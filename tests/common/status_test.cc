#include "src/common/status.h"

#include <gtest/gtest.h>

namespace libra {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key missing");
  EXPECT_EQ(s.ToString(), "not_found: key missing");
}

TEST(StatusTest, ErrorWithoutMessageFormatsCodeOnly) {
  EXPECT_EQ(Status::Internal().ToString(), "internal");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Internal());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, DefaultIsOkWithDefaultValue) {
  Result<std::string> r;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "");
}

TEST(ResultTest, HoldsValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "payload");
  EXPECT_EQ(*r, "payload");
  EXPECT_EQ(r->size(), 7u);
}

TEST(ResultTest, HoldsError) {
  Result<std::string> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or("fallback"), "fallback");
  // Unlike StatusOr, the value slot is always present (default-constructed
  // on error) so call sites can read it unconditionally.
  EXPECT_EQ(r.value(), "");
}

TEST(ResultTest, StatusAndValueTogether) {
  // A lookup can carry both (e.g. partial reads); both survive.
  Result<std::string> r(Status::DataLoss("torn"), std::string("prefix"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.value(), "prefix");
}

TEST(ResultTest, MutableAndMoveAccess) {
  Result<std::string> r = std::string("abc");
  r.value() += "d";
  EXPECT_EQ(*r, "abcd");
  const std::string out = std::move(r).value();
  EXPECT_EQ(out, "abcd");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace libra
