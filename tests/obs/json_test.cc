#include "src/obs/json.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/obs/histogram.h"

namespace libra::obs {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("a \"quoted\"\nvalue");
  w.Key("n");
  w.Int(-7);
  w.Key("u");
  w.Uint(18446744073709551615ULL);
  w.Key("xs");
  w.BeginArray();
  w.Double(1.5);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a \\\"quoted\\\"\\nvalue\",\"n\":-7,"
            "\"u\":18446744073709551615,\"xs\":[1.5,true,null]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(INFINITY);
  w.Double(2.0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,2]");
}

TEST(JsonParseTest, RoundTrip) {
  const char* doc =
      R"({"a":1,"b":[1,2.5,"x"],"c":{"d":true,"e":null},"f":"\u0041\n"})";
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(doc, &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("a")->number, 1.0);
  ASSERT_TRUE(v.Find("b")->is_array());
  EXPECT_EQ(v.Find("b")->array[1].number, 2.5);
  EXPECT_EQ(v.Find("b")->array[2].string_value, "x");
  EXPECT_TRUE(v.Find("c")->Find("d")->bool_value);
  EXPECT_TRUE(v.Find("c")->Find("e")->is_null());
  EXPECT_EQ(v.Find("f")->string_value, "A\n");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformed) {
  JsonValue v;
  EXPECT_FALSE(JsonParse("{", &v));
  EXPECT_FALSE(JsonParse("[1,]", &v));
  EXPECT_FALSE(JsonParse("{\"a\":1} trailing", &v));
  EXPECT_FALSE(JsonParse("", &v));
}

TEST(JsonParseTest, WriterOutputParses) {
  JsonWriter w;
  w.BeginObject();
  w.Key("odd \"key\"");
  w.String("tab\there");
  w.Key("neg");
  w.Double(-1.25e-3);
  w.EndObject();
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(w.str(), &v, &err)) << err;
  EXPECT_EQ(v.Find("odd \"key\"")->string_value, "tab\there");
  EXPECT_DOUBLE_EQ(v.Find("neg")->number, -1.25e-3);
}

TEST(HistogramToJsonTest, SchemaAndValues) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 1000);
  }
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(HistogramToJson(h), &v, &err)) << err;
  EXPECT_EQ(v.Find("count")->number, 100.0);
  EXPECT_EQ(v.Find("min_ns")->number, 1000.0);
  EXPECT_EQ(v.Find("max_ns")->number, 100000.0);
  EXPECT_NEAR(v.Find("mean_ns")->number, 50500.0, 1e-6);
  for (const char* p : {"p50", "p90", "p99", "p999"}) {
    ASSERT_NE(v.Find(p), nullptr) << p;
    EXPECT_TRUE(std::isfinite(v.Find(p)->number)) << p;
  }
  EXPECT_LE(v.Find("p50")->number, v.Find("p99")->number);
  ASSERT_TRUE(v.Find("buckets")->is_array());
  double total = 0.0;
  for (const JsonValue& b : v.Find("buckets")->array) {
    ASSERT_EQ(b.array.size(), 3u);  // [lower_bound, width, count]
    total += b.array[2].number;
  }
  EXPECT_EQ(total, 100.0);

  // Compact form drops the buckets.
  JsonValue compact;
  ASSERT_TRUE(JsonParse(HistogramToJson(h, false), &compact, &err)) << err;
  EXPECT_EQ(compact.Find("buckets"), nullptr);
}

}  // namespace
}  // namespace libra::obs
