// Per-class IO lifecycle statistics: the pair of histograms the scheduler
// keeps for every (app request, internal op) class of every tenant.
//
//   queue_wait — submit to first chunk dispatch: time an op spent parked in
//                its tenant's DRR queue, i.e. deliberate Libra throttling
//                (plus device queue-depth backpressure).
//   service    — first dispatch to last chunk completion: device time,
//                including chunk serialization for ops > chunk_bytes.
//
// Everything is fixed-size and updated with plain arithmetic, so the
// scheduler can record on its hot path without allocating.

#ifndef LIBRA_SRC_OBS_IO_STATS_H_
#define LIBRA_SRC_OBS_IO_STATS_H_

#include <cstdint>

#include "src/obs/histogram.h"

namespace libra::obs {

struct IoClassStats {
  LatencyHistogram queue_wait;
  LatencyHistogram service;
  uint64_t ops = 0;
  uint64_t chunks = 0;
  uint64_t bytes = 0;

  void RecordOp(uint64_t queue_wait_ns, uint64_t service_ns,
                uint32_t op_chunks, uint64_t op_bytes) {
    queue_wait.Record(queue_wait_ns);
    service.Record(service_ns);
    ++ops;
    chunks += op_chunks;
    bytes += op_bytes;
  }

  void Merge(const IoClassStats& other) {
    queue_wait.Merge(other.queue_wait);
    service.Merge(other.service);
    ops += other.ops;
    chunks += other.chunks;
    bytes += other.bytes;
  }
};

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_IO_STATS_H_
