#include "src/lsm/memtable.h"

namespace libra::lsm {

MemTable::GetResult MemTable::Get(std::string_view key,
                                  SequenceNumber snapshot) const {
  GetResult result;
  SkipList<Entry, EntryComparator>::Iterator it(&table_);
  // Seek to the newest entry visible at `snapshot`: internal order is
  // (key asc, seq desc), so the first entry >= (key, snapshot) is the
  // newest one with seq <= snapshot.
  Entry probe;
  probe.key = std::string(key);
  probe.seq = snapshot;
  probe.type = ValueType::kPut;
  it.Seek(probe);
  if (!it.Valid() || it.key().key != key) {
    return result;
  }
  const Entry& e = it.key();
  result.found = true;
  if (e.type == ValueType::kDelete) {
    result.deleted = true;
  } else {
    result.value = e.value;
  }
  return result;
}

}  // namespace libra::lsm
