// Parametric SSD device profiles.
//
// The paper evaluates on three physical SSDs (Intel 320 / SATA II, Samsung
// 840 Pro and OCZ Vector / SATA III). We model each as a small queueing
// network — controller, parallel NAND dies, shared host bus — with an FTL
// that performs garbage collection. The parameters below are tuned so that
// the *simulated* Intel profile lands near the paper's headline numbers
// (~37.5 kop/s interference-free max VOP throughput, ~18 kop/s floor under
// adversarial read/write mixes); the SATA III profiles are plausible
// scalings. See DESIGN.md §2 for the substitution rationale.

#ifndef LIBRA_SRC_SSD_PROFILE_H_
#define LIBRA_SRC_SSD_PROFILE_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace libra::ssd {

struct DeviceProfile {
  std::string name;

  // Geometry.
  uint64_t capacity_bytes = 4ULL * kGiB;  // logical capacity exposed to host
  double overprovision = 0.07;            // extra physical blocks for GC
  uint32_t page_bytes = 4096;
  uint32_t pages_per_block = 64;  // 256 KiB erase blocks
  int num_dies = 10;

  // Striping unit: ops are chunked across dies in stripe_pages units so a
  // multi-die op pays each die's command latency once per contiguous chunk,
  // not once per page.
  uint32_t stripe_pages = 4;  // 16 KiB

  // Controller: a single firmware pipeline; per-op fixed cost plus per-page
  // DMA/mapping cost. A secondary ceiling; dies bind small-op IOPS.
  SimDuration ctrl_read_op_ns = 20 * kMicrosecond;
  SimDuration ctrl_write_op_ns = 40 * kMicrosecond;
  SimDuration ctrl_page_ns = 1 * kMicrosecond;

  // NAND dies: per-command latency plus per-byte streaming. These bind
  // small-op IOPS (reads ~38.5 kop/s, writes ~14 kop/s on 10 dies), which
  // keeps read and write VOP-per-die-time balanced, as on real flash where
  // the die array is the shared bottleneck.
  SimDuration die_read_latency_ns = 215 * kMicrosecond;
  SimDuration die_write_latency_ns = 600 * kMicrosecond;
  double die_read_bw = 80.0 * 1e6;   // bytes/sec per die
  double die_write_bw = 30.0 * 1e6;  // bytes/sec per die
  SimDuration erase_ns = 2 * kMillisecond;

  // Cost of a die switching between serving reads and writes (program
  // buffer flush / suspended-program restrictions). This is the dominant
  // source of read/write interference (paper §3.2, Fig. 4).
  SimDuration rw_switch_penalty_ns = 550 * kMicrosecond;

  // Sequential reads skip part of the die command latency (readahead).
  // Sequential writes get no discount: the paper's ext4 + O_DIRECT setup
  // showed sequential write IOPS at or below random (§3.3, Fig. 3), and
  // the VOP cost model prices from the random curves — a seq-write
  // discount would let LSM write streams consume more VOP/s than the
  // calibrated maximum.
  double seq_read_latency_factor = 0.7;
  double seq_write_latency_factor = 1.0;

  // Host bus (SATA II ~270 MB/s effective, SATA III ~530 MB/s).
  double bus_bw = 270.0 * 1e6;  // bytes/sec
  SimDuration bus_op_ns = 2 * kMicrosecond;

  // Garbage collection watermarks, in free blocks per die.
  int gc_low_watermark_blocks = 3;
  int gc_high_watermark_blocks = 6;

  // Derived helpers.
  uint64_t total_pages() const {
    const double phys = static_cast<double>(capacity_bytes) * (1.0 + overprovision);
    return static_cast<uint64_t>(phys) / page_bytes;
  }
  uint64_t logical_pages() const { return capacity_bytes / page_bytes; }
  uint32_t block_bytes() const { return page_bytes * pages_per_block; }
};

// The paper's three devices. All keep the same qualitative shape; SATA III
// parts have a faster bus and controller and milder interference.
DeviceProfile Intel320Profile();
DeviceProfile Samsung840Profile();
DeviceProfile OczVectorProfile();

// Standard IOP sizes probed by the paper's sweeps: 1,2,4,...,256 KiB.
inline constexpr uint32_t kSweepSizesKb[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
inline constexpr int kNumSweepSizes = 9;

}  // namespace libra::ssd

#endif  // LIBRA_SRC_SSD_PROFILE_H_
