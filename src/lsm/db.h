// LSM-tree key-value engine (the paper's modified-LevelDB analogue).
//
// Write path: PUT/DELETE appends to the WAL (synchronous, charged as the
// tenant's direct PUT IO) and inserts into the memtable. A full memtable is
// sealed and FLUSHed to an L0 table by a background task; L0 growth and
// level fullness drive background COMPACTions. Both run as separate
// concurrent tasks (the paper's §5 modification), and both tag their IO
// with the originating internal operation so Libra's tracker attributes
// the amplification back to PUTs.
//
// Read path: memtable -> sealed memtable -> L0 (newest first, all files
// whose key range covers the key) -> L1.. (one file per level). Every
// probed table costs at least an index-block read — uniform-keyspace PUT
// churn widens the eligible file set, reproducing the paper's GET-cost
// amplification (Fig. 2, Fig. 12).
//
// Versions are immutable snapshots of the level structure; tables are
// refcounted and their physical files are deleted when the last version
// referencing them dies (readers mid-lookup keep them alive).
//
// Deviation from LevelDB: no manifest — recovery replays the WAL only
// (table metadata lives in memory for the process lifetime; see DESIGN.md).

#ifndef LIBRA_SRC_LSM_DB_H_
#define LIBRA_SRC_LSM_DB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/trace_context.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/io_tag.h"
#include "src/iosched/scheduler.h"
#include "src/lsm/memtable.h"
#include "src/lsm/sstable.h"
#include "src/lsm/wal.h"
#include "src/obs/span.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace libra::lsm {

// How background compaction reorganizes the tree (a per-tenant choice,
// declared at AddTenant and priced accordingly — the policy shapes the
// indirect q^{a,i} profile the resource tracker observes):
//   kLeveled    — LevelDB-style: L0 overlapping, L1+ sorted disjoint runs;
//                 merging rewrites overlapping out-level files. Low read
//                 amplification, high write amplification.
//   kSizeTiered — every level is a tier of whole overlapping runs, newest
//                 first; a full tier merges into a single run front-
//                 inserted into the next tier. Low write amplification,
//                 high read amplification (every run is probed on GET).
enum class CompactionPolicy : uint8_t {
  kLeveled = 0,
  kSizeTiered = 1,
};

struct LsmOptions {
  uint64_t write_buffer_bytes = 4 * kMiB;  // memtable/WAL size limit
  uint32_t block_bytes = 4096;
  uint32_t write_chunk_bytes = 256 * 1024;
  uint64_t target_file_bytes = 2 * kMiB;  // compaction output granularity
  int l0_compaction_trigger = 4;
  int l0_stop_writes = 12;
  int num_levels = 5;
  uint64_t max_bytes_level1 = 8 * kMiB;  // grows 8x per level
  // Request-path batching knobs. Defaults preserve the paper-faithful IO
  // pattern (one synced WAL IOP per PUT, unbounded first-use index cache).
  bool wal_group_commit = false;
  uint32_t wal_group_max_bytes = 256 * 1024;
  uint32_t wal_group_max_records = 64;
  // Deprecated alias for block_cache_bytes that caches index blocks only
  // (the old TableIndexCache, byte-identical IO). 0 = unbounded (default:
  // every table keeps its index resident after first use, as before).
  // Ignored when block_cache_bytes or shared_block_cache is set.
  uint64_t table_cache_bytes = 0;
  // Bloom filter density for tables written at flush and compaction; 0
  // writes no filter blocks (files byte-identical to the seed format).
  uint32_t bloom_bits_per_key = 0;
  // Byte budget for a DB-owned BlockCache over index + filter + data
  // blocks; 0 = no data-block caching (table_cache_bytes still applies).
  uint64_t block_cache_bytes = 0;
  // Node-shared BlockCache (one budget across all tenants' partitions);
  // when set it overrides both byte knobs above. Must outlive the DB.
  BlockCache* shared_block_cache = nullptr;
  CompactionPolicy compaction_policy = CompactionPolicy::kLeveled;
  // Size-tiered only: runs a tier accumulates before the whole tier merges
  // into the next (the bottom tier self-merges at the same threshold).
  int tier_compaction_trigger = 4;
};

struct LsmStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t scans = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t tables_probed = 0;  // cumulative per-GET file probes
  uint64_t scan_keys = 0;      // live keys yielded across all scans
  uint64_t scan_bytes = 0;     // key+value payload bytes of those keys
  // Background-work and backpressure accounting (observability):
  uint64_t flush_bytes = 0;            // table bytes written by FLUSH
  uint64_t flush_ns = 0;               // total sim time inside flushes
  uint64_t compact_bytes_read = 0;     // input + overlap bytes read
  uint64_t compact_bytes_written = 0;  // output table bytes written
  uint64_t compact_ns = 0;             // total sim time inside compactions
  uint64_t stalls = 0;                 // write-stall episodes entered
  uint64_t stall_ns = 0;               // total writer time spent stalled
  // WAL group commit (all zero unless wal_group_commit is on):
  uint64_t wal_appends = 0;          // records appended to any WAL
  uint64_t wal_batches = 0;          // device appends issued by leaders
  uint64_t wal_batched_records = 0;  // records that rode those batches
  uint64_t wal_max_batch_records = 0;
  // Table (index-block) cache — this tenant's index-block traffic through
  // whichever cache serves it (legacy names kept for stats continuity):
  uint64_t table_cache_hits = 0;
  uint64_t table_cache_misses = 0;
  uint64_t table_cache_evictions = 0;
  uint64_t table_cache_resident_bytes = 0;
  // Bloom filters (all zero unless bloom_bits_per_key > 0):
  uint64_t bloom_probes = 0;
  uint64_t bloom_negatives = 0;
  uint64_t bloom_false_positives = 0;
  // GET read-path block traffic (device reads vs cache hits):
  uint64_t index_block_reads = 0;
  uint64_t filter_block_reads = 0;
  uint64_t data_block_reads = 0;
  uint64_t data_cache_hits = 0;
  // Block cache, this tenant's view (per-kind hit/miss + its evictions;
  // resident/capacity are cache-wide — the budget is shared):
  uint64_t bcache_index_hits = 0;
  uint64_t bcache_index_misses = 0;
  uint64_t bcache_filter_hits = 0;
  uint64_t bcache_filter_misses = 0;
  uint64_t bcache_data_hits = 0;
  uint64_t bcache_data_misses = 0;
  uint64_t bcache_evictions = 0;
  uint64_t bcache_resident_bytes = 0;
  uint64_t bcache_capacity_bytes = 0;
  // Boot-time WAL recovery (non-zero only when Open() found surviving
  // files from a previous incarnation under the same prefix):
  uint64_t recovered_wal_files = 0;
  uint64_t recovered_records = 0;
  uint64_t recovered_bytes = 0;  // key+value payload bytes replayed
  std::vector<int> files_per_level;
};

class LsmDb {
 public:
  LsmDb(sim::EventLoop& loop, fs::SimFs& fs, iosched::IoScheduler& scheduler,
        iosched::TenantId tenant, std::string name_prefix,
        LsmOptions options = {});

  LsmDb(const LsmDb&) = delete;
  LsmDb& operator=(const LsmDb&) = delete;

  // Creates (or recovers) the WAL. Must be called before any operation.
  Status Open();

  // `ctx` is the caller's trace span (invalid when untraced); it rides the
  // operation's IoTags so its device IO emits causally-linked spans, and —
  // for writes — is remembered as the memtable entry's origin so the FLUSH
  // and COMPACTions that later move those bytes link back to it. `op`
  // tags the write's direct IO with an internal-op class: the cluster
  // layer's re-replication copy stream writes with InternalOp::kReplicate
  // so catch-up traffic is attributed (and priced) as background work.
  sim::Task<Status> Put(std::string_view key, std::string_view value,
                        TraceContext ctx = {},
                        iosched::InternalOp op = iosched::InternalOp::kNone);
  sim::Task<Status> Delete(std::string_view key, TraceContext ctx = {},
                           iosched::InternalOp op = iosched::InternalOp::kNone);

  struct GetResult {
    Status status;      // NotFound when the key does not exist
    std::string value;  // valid when status.ok()
  };
  sim::Task<GetResult> Get(std::string_view key, TraceContext ctx = {});

  struct ScanResult {
    Status status;
    // Live key/value pairs in user-key order; tombstoned and shadowed
    // versions are merged away.
    std::vector<std::pair<std::string, std::string>> entries;
  };
  // Bounded range scan over [start, end) — an empty `end` means "to the
  // end of the keyspace" — yielding at most `limit` live entries (0 = no
  // limit). A k-way merge-read across memtable, sealed memtable, and every
  // overlapping table: sources stream in internal-key order through
  // per-table RangeCursors, the newest version of each user key wins, and
  // tombstones shadow older versions below them. Table IO is charged to
  // the tenant's SCAN class; `ctx` rides the tags like Get's.
  sim::Task<ScanResult> Scan(std::string_view start, std::string_view end,
                             size_t limit, TraceContext ctx = {});

  // Awaits quiescence of background flush/compaction work.
  sim::Task<void> WaitIdle();

  // Reads every live (non-deleted) key/value visible at the current sequence
  // number, in user-key order, and yields each via `fn`. Table reads are
  // charged to the tenant under `tag` (the cluster layer's shard-migration
  // drain uses an unattributed tag so profiles stay clean). The scan merges
  // memtable, sealed memtable, and all levels; concurrent writes during the
  // scan are not reflected.
  sim::Task<Status> ScanLive(
      const iosched::IoTag& tag,
      const std::function<void(std::string_view key, std::string_view value)>&
          fn);

  // Crash simulation. Kill() marks the DB dead: new operations fail with
  // kUnavailable, and in-flight coroutines (writers, readers, flush,
  // compaction) bail at their next suspension point without installing
  // results or removing WAL files — exactly the durable state a power cut
  // would leave. The filesystem keeps the WAL files; a successor LsmDb
  // constructed over the same prefix replays them in Open().
  void Kill();
  bool dead() const { return dead_; }
  // True once every in-flight coroutine has unwound. A killed DB must be
  // quiescent before destruction (destroying live coroutine state is UB);
  // StorageNode parks killed DBs in a graveyard until this holds.
  bool Quiescent() const {
    return !flush_running_ && !compaction_running_ && active_ops_ == 0;
  }

  LsmStats stats() const;
  int NumFilesAtLevel(int level) const;

  // Structural self-check: L1+ files sorted and non-overlapping, L0 files
  // newest-first by number. Returns "" when healthy, else a description.
  // Used by invariant tests.
  std::string DebugCheckInvariants() const;
  iosched::TenantId tenant() const { return tenant_; }

 private:
  struct TableHandle {
    fs::SimFs* fs = nullptr;
    std::string name;
    fs::FileId file = fs::kInvalidFile;
    uint64_t number = 0;
    uint64_t size_bytes = 0;
    std::string smallest;
    std::string largest;
    std::unique_ptr<SstableReader> reader;
    BlockCache* cache = nullptr;  // set iff a cache serves this table
    iosched::TenantId tenant = 0;
    // Tracing lineage: the FLUSH/COMPACT span that built this table, plus a
    // bounded sample of the app-request spans whose bytes it holds. A later
    // compaction reading this table links its span to these, extending the
    // causal chain PUT -> FLUSH -> COMPACT -> ... across rewrites.
    TraceContext lineage;
    obs::SpanLinkSet origin_links;

    ~TableHandle() {
      if (cache != nullptr) {
        cache->EraseTable(tenant, number);  // dead table: drop its blocks
      }
      if (fs != nullptr && !name.empty()) {
        fs->Delete(name);  // last reference gone: reclaim the space
      }
    }
  };
  using TableRef = std::shared_ptr<TableHandle>;

  struct Version {
    // Leveled: levels[0] newest first (ranges may overlap); levels[1..]
    // sorted by smallest key, disjoint ranges.
    // Size-tiered: every level is a tier of whole runs, newest first,
    // ranges may overlap.
    std::vector<std::vector<TableRef>> levels;
  };
  using VersionRef = std::shared_ptr<const Version>;

  // Frame-scoped in-flight counter backing Quiescent(): constructed at the
  // top of every public coroutine, destroyed with the coroutine frame.
  struct OpGuard {
    explicit OpGuard(LsmDb* db) : db_(db) { ++db_->active_ops_; }
    ~OpGuard() { --db_->active_ops_; }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;
    LsmDb* db_;
  };

  // --- write path ---
  sim::Task<Status> WriteInternal(std::string_view key, std::string_view value,
                                  ValueType type, TraceContext ctx,
                                  iosched::InternalOp op);
  bool WriteStalled() const;
  // Seals the memtable + WAL and kicks the flush task if needed.
  Status SealMemtable();

  // --- background jobs ---
  sim::Task<void> FlushJob();
  sim::Task<void> CompactionJob();
  void MaybeStartCompaction();
  // Level most in need of compaction; returns -1 when all scores < 1.
  int PickCompactionLevel() const;
  sim::Task<Status> CompactLevel(int level);
  // Size-tiered: merges every run of `tier` into one run front-inserted
  // into the next tier (the bottom tier merges in place).
  sim::Task<Status> CompactTier(int tier);

  // --- helpers ---
  std::string TableName(uint64_t number) const;
  std::string WalName(uint64_t number) const;
  WalOptions MakeWalOptions() const;
  uint64_t MaxBytesForLevel(int level) const;
  static bool RangesOverlap(const TableHandle& t, std::string_view lo,
                            std::string_view hi);
  // Builds one output table from sorted records [begin, end).
  sim::Task<StatusOr<TableRef>> BuildTable(
      const std::vector<MemTable::Entry>& entries, size_t begin, size_t end,
      const iosched::IoTag& tag);

  sim::EventLoop& loop_;
  fs::SimFs& fs_;
  iosched::IoScheduler& scheduler_;
  iosched::TenantId tenant_;
  std::string prefix_;
  LsmOptions options_;
  // The block cache serving this DB's readers, resolved from options_ in
  // the constructor: a caller-owned shared cache, a DB-owned full cache
  // (block_cache_bytes), a DB-owned index-only cache (the deprecated
  // table_cache_bytes alias), or nullptr — legacy reader-resident indexes.
  std::unique_ptr<BlockCache> owned_cache_;
  BlockCache* cache_ = nullptr;
  TableReadCounters read_counters_;  // shared by all this DB's readers
  WalCounters wal_counters_;  // survives WAL rotation at memtable seal

  SequenceNumber seq_ = 0;
  uint64_t next_file_number_ = 1;

  std::unique_ptr<MemTable> mem_;
  std::unique_ptr<MemTable> imm_;  // sealed, being flushed
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<WriteAheadLog> imm_wal_;
  VersionRef current_;

  bool flush_running_ = false;
  bool compaction_running_ = false;
  bool dead_ = false;
  int active_ops_ = 0;
  sim::Mutex stall_mu_;
  sim::CondVar stall_cv_;

  // WAL files replayed by Open(); deleted once the first flush persists
  // the memtable that absorbed them (see FlushJob).
  std::vector<std::string> recovered_wals_;
  bool recovered_in_imm_ = false;
  uint64_t recovered_wal_files_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t recovered_bytes_ = 0;

  uint64_t puts_ = 0;
  uint64_t gets_ = 0;
  uint64_t scans_ = 0;
  uint64_t scan_keys_ = 0;
  uint64_t scan_bytes_ = 0;
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
  uint64_t tables_probed_ = 0;
  uint64_t flush_bytes_ = 0;
  uint64_t flush_ns_ = 0;
  uint64_t compact_bytes_read_ = 0;
  uint64_t compact_bytes_written_ = 0;
  uint64_t compact_ns_ = 0;
  uint64_t stalls_ = 0;
  uint64_t stall_ns_ = 0;
  std::vector<size_t> compact_cursor_;  // round-robin pick per level
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_DB_H_
