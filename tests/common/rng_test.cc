#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace libra {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedSamplesInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextU64(100), 100u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(LogNormalSizeTest, ZeroSigmaIsFixedSize) {
  LogNormalSize dist(4096.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.Sample(rng), 4096u);
  }
}

TEST(LogNormalSizeTest, MeanMatchesParameter) {
  // Paper workloads: mean request size with sigma in bytes (e.g. 4KB mean,
  // sigma 1KB in Fig. 11).
  LogNormalSize dist(4096.0, 1024.0);
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(dist.Sample(rng));
  }
  EXPECT_NEAR(sum / n, 4096.0, 4096.0 * 0.02);
}

TEST(LogNormalSizeTest, RespectsClamping) {
  LogNormalSize dist(4096.0, 32768.0, 1024, 8192);
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t s = dist.Sample(rng);
    EXPECT_GE(s, 1024u);
    EXPECT_LE(s, 8192u);
  }
}

TEST(LogNormalSizeTest, HigherSigmaSpreadsSamples) {
  LogNormalSize narrow(16384.0, 4096.0);
  LogNormalSize wide(16384.0, 65536.0);
  Rng rng(31);
  double narrow_var = 0.0;
  double wide_var = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double a = static_cast<double>(narrow.Sample(rng)) - 16384.0;
    const double b = static_cast<double>(wide.Sample(rng)) - 16384.0;
    narrow_var += a * a;
    wide_var += b * b;
  }
  EXPECT_GT(wide_var, narrow_var * 4);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfGenerator zipf(10000, 0.99);
  Rng rng(41);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  // Rank 0 should dominate: YCSB-style 0.99 skew gives the head item a few
  // percent of all accesses over 10k keys.
  EXPECT_GT(counts[0], n / 50);
  // Head-10 share should far exceed the uniform expectation of 0.1%.
  int head = 0;
  for (uint64_t k = 0; k < 10; ++k) {
    head += counts[k];
  }
  EXPECT_GT(head, n / 10);
}

TEST(ZipfTest, ThetaZeroIsNearUniform) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(43);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  // Every key should land within 3x of the uniform expectation.
  for (const auto& [k, c] : counts) {
    EXPECT_LT(c, 3 * n / 100) << "key " << k;
  }
  EXPECT_EQ(counts.size(), 100u);
}

}  // namespace
}  // namespace libra
