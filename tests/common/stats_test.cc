#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace libra {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Observe(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Observe(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Min(), 10.0);
  EXPECT_DOUBLE_EQ(s.Max(), 40.0);
  EXPECT_DOUBLE_EQ(s.Median(), 25.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.25), 17.5);
}

TEST(SampleSetTest, CdfAtCountsInclusive) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(100.0), 1.0);
}

TEST(SampleSetTest, CdfPointsMonotone) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) {
    s.Add(static_cast<double>((i * 37) % 100));
  }
  const auto points = s.CdfPoints(11);
  ASSERT_EQ(points.size(), 11u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.front().second, 0.0);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
  s.Add(1.0);
  s.Add(9.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
}

TEST(MinMaxRatioTest, EmptyIsPerfect) {
  EXPECT_DOUBLE_EQ(MinMaxRatio({}), 1.0);
}

TEST(MinMaxRatioTest, EqualSharesArePerfect) {
  EXPECT_DOUBLE_EQ(MinMaxRatio({0.8, 0.8, 0.8}), 1.0);
}

TEST(MinMaxRatioTest, SkewLowersRatio) {
  EXPECT_DOUBLE_EQ(MinMaxRatio({0.5, 1.0}), 0.5);
  EXPECT_DOUBLE_EQ(MinMaxRatio({1.0, 0.25, 0.5}), 0.25);
}

TEST(MinMaxRatioTest, NonPositiveMaxIsZero) {
  EXPECT_DOUBLE_EQ(MinMaxRatio({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace libra
