// Virtual-time measurement utilities for the evaluation harnesses:
// throughput meters with warmup exclusion and windowed time series.

#ifndef LIBRA_SRC_METRICS_METER_H_
#define LIBRA_SRC_METRICS_METER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace libra::metrics {

// Counts discrete quantities (ops, VOPs, normalized requests, bytes) and
// reports rates over the measured span. Start() marks the beginning of the
// measurement window so warmup traffic is excluded.
class ThroughputMeter {
 public:
  void Start(SimTime now) {
    start_ = now;
    count_ = 0.0;
    started_ = true;
  }

  void Add(double amount) {
    if (started_) {
      count_ += amount;
    }
  }

  double total() const { return count_; }

  // Rate in units/second over [start, now]; 0 before Start or at zero span.
  double Rate(SimTime now) const {
    if (!started_ || now <= start_) {
      return 0.0;
    }
    return count_ / ToSeconds(now - start_);
  }

 private:
  SimTime start_ = 0;
  double count_ = 0.0;
  bool started_ = false;
};

// Accumulates (time, value) points, e.g. per-second tenant throughput for
// the Fig. 11/12 time-series plots.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void Record(SimTime t, double value) { points_.push_back({t, value}); }

  struct Point {
    SimTime time;
    double value;
  };

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Mean of values with time in [from, to]; 0 when no points match.
  double MeanOver(SimTime from, SimTime to) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Periodic rate sampler: call Tick(now, cumulative_count) once per interval;
// produces a TimeSeries of interval rates. Used to build the per-second
// request-throughput curves.
class RateSampler {
 public:
  explicit RateSampler(std::string name) : series_(std::move(name)) {}

  void Tick(SimTime now, double cumulative) {
    if (has_prev_ && now > prev_time_) {
      const double rate = (cumulative - prev_value_) / ToSeconds(now - prev_time_);
      series_.Record(now, rate);
    }
    prev_time_ = now;
    prev_value_ = cumulative;
    has_prev_ = true;
  }

  const TimeSeries& series() const { return series_; }

 private:
  TimeSeries series_;
  SimTime prev_time_ = 0;
  double prev_value_ = 0.0;
  bool has_prev_ = false;
};

}  // namespace libra::metrics

#endif  // LIBRA_SRC_METRICS_METER_H_
