// Parameterized LSM property sweeps: the randomized differential test must
// hold across seeds and value-size regimes, and compaction must preserve
// the level invariants for every write-buffer configuration.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "src/common/rng.h"
#include "src/lsm/db.h"
#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

using SweepParam = std::tuple<uint64_t, uint32_t>;  // (seed, max value bytes)

class LsmDifferentialSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LsmDifferentialSweep, MatchesReferenceMapAndKeepsInvariants) {
  const auto [seed, max_value] = GetParam();
  LsmRig rig;
  LsmOptions opt;
  opt.write_buffer_bytes = 48 * 1024;
  opt.max_bytes_level1 = 192 * 1024;
  opt.target_file_bytes = 48 * 1024;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());

  std::map<std::string, std::string> reference;
  Rng rng(seed);
  rig.RunTask([&]() -> sim::Task<void> {
    for (int op = 0; op < 1200; ++op) {
      EXPECT_EQ(db.DebugCheckInvariants(), "") << "op " << op;
      const std::string key = Key(static_cast<int>(rng.NextU64(200)));
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        const std::string value =
            "v" + std::to_string(op) +
            std::string(rng.NextU64(max_value), 'x');
        co_await db.Put(key, value);
        reference[key] = value;
      } else if (dice < 0.65) {
        co_await db.Delete(key);
        reference.erase(key);
      } else {
        auto r = co_await db.Get(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(r.status.code(), StatusCode::kNotFound) << key;
        } else {
          EXPECT_TRUE(r.status.ok()) << key;
          EXPECT_EQ(r.value, it->second) << key;
        }
      }
    }
    co_await db.WaitIdle();
    EXPECT_EQ(db.DebugCheckInvariants(), "");
    for (const auto& [key, value] : reference) {
      auto r = co_await db.Get(key);
      EXPECT_TRUE(r.status.ok()) << key;
      EXPECT_EQ(r.value, value) << key;
    }
  }());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, LsmDifferentialSweep,
    ::testing::Combine(::testing::Values(1ull, 77ull, 4242ull),
                       ::testing::Values(64u, 2048u, 16384u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_val" +
             std::to_string(std::get<1>(info.param));
    });

// Write-buffer size must not affect correctness, only flush cadence.

class WriteBufferSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WriteBufferSweep, AllKeysSurviveChurn) {
  LsmRig rig;
  LsmOptions opt;
  opt.write_buffer_bytes = GetParam();
  opt.max_bytes_level1 = 4 * opt.write_buffer_bytes;
  opt.target_file_bytes = opt.write_buffer_bytes;
  LsmDb db(rig.loop, rig.fs, rig.sched, 1, "t1", opt);
  ASSERT_TRUE(db.Open().ok());
  rig.RunTask([&]() -> sim::Task<void> {
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 150; ++i) {
        co_await db.Put(Key(i), std::string(700, 'a' + round));
      }
    }
    co_await db.WaitIdle();
    for (int i = 0; i < 150; i += 11) {
      auto r = co_await db.Get(Key(i));
      EXPECT_TRUE(r.status.ok()) << i;
      EXPECT_EQ(r.value, std::string(700, 'c')) << i;
    }
    EXPECT_EQ(db.DebugCheckInvariants(), "");
  }());
  EXPECT_GT(db.stats().flushes, 0u);
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, WriteBufferSweep,
                         ::testing::Values(16u * 1024u, 64u * 1024u,
                                           256u * 1024u));

}  // namespace
}  // namespace libra::lsm
