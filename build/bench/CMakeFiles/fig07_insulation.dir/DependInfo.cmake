
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_insulation.cc" "bench/CMakeFiles/fig07_insulation.dir/fig07_insulation.cc.o" "gcc" "bench/CMakeFiles/fig07_insulation.dir/fig07_insulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/libra_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/libra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/libra_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/libra_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/libra_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/iosched/CMakeFiles/libra_iosched.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/libra_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/libra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
