// Shared setup for the prototype (KV-node) benches: Figs. 2, 10, 11, 12.

#ifndef LIBRA_BENCH_KV_BENCH_COMMON_H_
#define LIBRA_BENCH_KV_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/cluster.h"
#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/multi_loop.h"
#include "src/sim/sync.h"
#include "src/workload/workload.h"

namespace libra::bench {

// Node configured like the paper's prototype: Intel 320, exact cost model,
// no object cache, 4MB write buffers.
kv::NodeOptions PrototypeNodeOptions();

// Applies --trace-json/--trace-sample to a node's scheduler options: span
// collection on (capacity `span_capacity`) when tracing was requested,
// sampling 1 of every args.trace_sample root requests. Leave id seeding to
// Cluster for multi-node benches; single-node benches can pass a nonzero
// `id_seed` to namespace ids per node themselves.
void ApplyTraceFlags(const BenchArgs& args, kv::NodeOptions& options,
                     size_t span_capacity = 1 << 16, uint64_t id_seed = 0);

// Runs `preloads` to completion on `loop` (sequentially).
void RunPreloads(sim::EventLoop& loop,
                 std::vector<workload::KvTenantWorkload*> workloads);

// --- simulation rig: serial EventLoop or parallel MultiLoop ---
//
// Wraps the engine choice behind one small interface. Serial (the default:
// one EventLoop, instantaneous RPC) is byte-identical to every release
// before the parallel engine existed. Parallel (sim::MultiLoop: loop 0 for
// clients/coordination, one loop per storage node) is selected by
// --rpc-latency-us > 0 or --sim-threads > 1 and produces byte-identical
// output for every thread count at a fixed latency — only wall-clock time
// changes.
struct SimRig {
  std::unique_ptr<sim::EventLoop> serial;
  std::unique_ptr<sim::MultiLoop> multi;
  SimDuration rpc_latency = 0;  // cross-node latency (parallel mode only)

  bool parallel() const { return multi != nullptr; }
  // The loop clients (workloads, fault schedules, verifiers) run on.
  sim::EventLoop& client() { return multi ? multi->loop(0) : *serial; }
  uint64_t RunUntil(SimTime deadline) {
    return multi ? multi->RunUntil(deadline) : serial->RunUntil(deadline);
  }
  uint64_t Run() { return multi ? multi->Run() : serial->Run(); }
  // Runs `fn` at virtual time `when` with every loop quiesced: a barrier
  // hook in parallel mode, a plain event in serial mode. Required for
  // mid-run snapshots that read node-side state (trackers, policies).
  void AtTime(SimTime when, std::function<void()> fn);
};

// Builds the engine the flags ask for; `nodes` is the storage-node count
// (the parallel engine gets nodes + 1 loops). When the flags imply the
// parallel engine but leave the latency unset, a 50us default is used.
SimRig MakeSimRig(const BenchArgs& args, int nodes);

// Constructs the cluster on the rig's engine (rig.rpc_latency becomes
// ClusterOptions::rpc_latency in parallel mode).
std::unique_ptr<cluster::Cluster> MakeCluster(SimRig& rig,
                                              cluster::ClusterOptions options);

// RunPreloads on whichever engine the rig holds.
void RunPreloads(SimRig& rig,
                 std::vector<workload::KvTenantWorkload*> workloads);

}  // namespace libra::bench

#endif  // LIBRA_BENCH_KV_BENCH_COMMON_H_
