file(REMOVE_RECURSE
  "CMakeFiles/fig11_reservations.dir/fig11_reservations.cc.o"
  "CMakeFiles/fig11_reservations.dir/fig11_reservations.cc.o.d"
  "fig11_reservations"
  "fig11_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
