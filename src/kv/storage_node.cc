#include "src/kv/storage_node.h"

#include <cassert>

#include "src/sim/sync.h"

namespace libra::kv {

using iosched::AppRequest;
using iosched::Reservation;
using iosched::TenantId;

// The scheduler's app-request vocabulary and the observability layer's
// attribution-matrix axis must stay in lockstep: per-class reservations,
// audit rows, and q̂^{a,i} columns are all indexed by the same codes.
static_assert(obs::kAttrApps == iosched::kNumAppRequests,
              "add new AppRequest classes to obs::kAttrApps too");

StorageNode::StorageNode(sim::EventLoop& loop, NodeOptions options)
    : loop_(loop),
      options_(std::move(options)),
      device_(loop_, options_.device_profile, options_.device_options),
      scheduler_(loop_, device_,
                 iosched::MakeCostModel(options_.cost_model,
                                        options_.calibration),
                 options_.scheduler_options),
      fs_(scheduler_, device_),
      capacity_(options_.capacity_floor_vops),
      policy_(loop_, scheduler_, capacity_, options_.policy_options) {
  assert(!options_.calibration.sizes_kb.empty() &&
         "NodeOptions.calibration must be populated (run ssd::Calibrate)");
  if (options_.enable_cache) {
    cache_ = std::make_unique<LruCache>(options_.cache_bytes);
  }
  if (options_.lsm_options.block_cache_bytes > 0) {
    // One cache, one budget, for every tenant partition on the node; the
    // partitions get it via TenantLsmOptions' shared_block_cache pointer.
    block_cache_ = std::make_unique<lsm::BlockCache>(
        options_.lsm_options.block_cache_bytes, /*cache_data=*/true);
  }
  if (options_.prefill_bytes > 0) {
    device_.Prefill(options_.prefill_bytes);
  }
}

namespace {

// Negative or non-finite rates are malformed; zero is legal (best-effort
// tenant, provisioned purely by work conservation). Checked per class so
// new app-request classes are validated without new code.
Status ValidateReservation(const Reservation& r) {
  for (int a = iosched::kFirstAppRequest; a < iosched::kNumAppRequests; ++a) {
    if (!(r.rps[a] >= 0.0)) {
      return Status::InvalidArgument(
          "reservation rates must be finite and non-negative (" +
          std::string(iosched::AppRequestName(static_cast<AppRequest>(a))) +
          "=" + std::to_string(r.rps[a]) + ")");
    }
  }
  return Status::Ok();
}

// Mints the node-level request span: a child of the caller's (cluster)
// span when one rode in, else a new root trace honoring 1/N sampling.
// Returns an invalid ctx when tracing is off or the request sampled out —
// every downstream layer then runs untraced.
struct RequestSpan {
  TraceContext ctx;
  uint64_t parent = 0;
};

RequestSpan BeginRequestSpan(obs::SpanCollector* spans, TraceContext caller) {
  RequestSpan r;
  if (spans == nullptr) {
    return r;
  }
  if (caller.valid()) {
    r.ctx = spans->MintChild(caller);
    r.parent = caller.span_id;
  } else {
    r.ctx = spans->MintTrace();
  }
  return r;
}

void EndRequestSpan(obs::SpanCollector* spans, const RequestSpan& r,
                    obs::SpanKind kind, AppRequest app, TenantId tenant,
                    SimTime start, SimTime end, uint64_t bytes,
                    TraceContext link = {}) {
  if (spans == nullptr || !r.ctx.valid()) {
    return;
  }
  obs::SpanRecord rec;
  rec.trace_id = r.ctx.trace_id;
  rec.span_id = r.ctx.span_id;
  rec.parent_span = r.parent;
  rec.kind = kind;
  rec.app = static_cast<uint8_t>(app);
  rec.tenant = tenant;
  rec.start_ns = start;
  rec.end_ns = end;
  rec.bytes = bytes;
  rec.links.Add(link);
  spans->Record(rec);
}

}  // namespace

lsm::LsmOptions StorageNode::TenantLsmOptions(TenantId tenant) const {
  lsm::LsmOptions opt = options_.lsm_options;
  opt.compaction_policy =
      static_cast<lsm::CompactionPolicy>(policy_.CompactionPolicyOf(tenant));
  if (block_cache_ != nullptr) {
    opt.shared_block_cache = block_cache_.get();
  }
  return opt;
}

Status StorageNode::AddTenant(TenantId tenant, Reservation reservation,
                              obs::DeclaredAttribution declared,
                              lsm::CompactionPolicy compaction) {
  if (partitions_.count(tenant) > 0) {
    return Status::AlreadyExists("tenant exists");
  }
  if (Status s = ValidateReservation(reservation); !s.ok()) {
    return s;
  }
  // Record the declared policy first: TenantLsmOptions reads it back, and
  // the resource policy stamps it on this tenant's audit rows.
  policy_.SetCompactionPolicy(tenant, static_cast<uint8_t>(compaction));
  auto db = std::make_unique<lsm::LsmDb>(loop_, fs_, scheduler_, tenant,
                                         "tenant_" + std::to_string(tenant),
                                         TenantLsmOptions(tenant));
  if (Status s = db->Open(); !s.ok()) {
    return s;
  }
  partitions_.emplace(tenant, std::move(db));
  policy_.SetReservation(tenant, reservation);
  if (declared.declared) {
    policy_.SetDeclaredProfile(tenant, declared);
  }
  // Resolve the tenant's latency series now; the request path only touches
  // these pre-registered histograms (see RequestLatency).
  RequestLatency& rl = request_latency_[tenant];
  rl.get = &metrics_.GetHistogram(
      "app_request_latency_ns",
      {tenant, static_cast<uint8_t>(AppRequest::kGet), 0});
  rl.put = &metrics_.GetHistogram(
      "app_request_latency_ns",
      {tenant, static_cast<uint8_t>(AppRequest::kPut), 0});
  rl.scan = &metrics_.GetHistogram(
      "app_request_latency_ns",
      {tenant, static_cast<uint8_t>(AppRequest::kScan), 0});
  return Status::Ok();
}

Status StorageNode::UpdateReservation(TenantId tenant,
                                      Reservation reservation) {
  if (partitions_.count(tenant) == 0) {
    return Status::NotFound("unknown tenant " + std::to_string(tenant));
  }
  if (Status s = ValidateReservation(reservation); !s.ok()) {
    return s;
  }
  policy_.SetReservation(tenant, reservation);
  return Status::Ok();
}

void StorageNode::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  ++crashes_;
  // Remember whether the policy was running so Restart() doesn't resurrect
  // a periodic timer on a node that was never Start()ed (tests and
  // harnesses that drive provisioning manually rely on a draining Run()).
  policy_was_running_ = policy_.running();
  policy_.Stop();
  for (auto& [tenant, db] : partitions_) {
    db->Kill();
    graveyard_.push_back(std::move(db));
  }
  partitions_.clear();
}

sim::Task<Status> StorageNode::Restart() {
  if (!crashed_) {
    co_return Status::FailedPrecondition("node is not crashed");
  }
  // Let every killed coroutine observe dead_ and unwind before the DBs
  // (whose members they reference) are destroyed.
  for (;;) {
    bool quiescent = true;
    for (const auto& db : graveyard_) {
      if (!db->Quiescent()) {
        quiescent = false;
        break;
      }
    }
    if (quiescent) {
      break;
    }
    co_await sim::SleepFor(loop_, kMillisecond);
  }
  // Destroying the dead incarnations drops their table handles, deleting
  // the installed SST files: with no manifest, the table metadata died
  // with the process, so flushed data is unrecoverable locally (the
  // cluster layer re-replicates it). WAL files survive on the fs.
  graveyard_.clear();
  crashed_ = false;
  // The policy kept every tenant's reservation and declared profile;
  // request_latency_ kept the tenant set. Reopen each partition over its
  // old prefix — Open() replays the surviving WALs.
  for (const auto& [tenant, unused] : request_latency_) {
    auto db = std::make_unique<lsm::LsmDb>(loop_, fs_, scheduler_, tenant,
                                           "tenant_" + std::to_string(tenant),
                                           TenantLsmOptions(tenant));
    if (Status s = db->Open(); !s.ok()) {
      co_return s;
    }
    const lsm::LsmStats st = db->stats();
    recovery_wal_files_ += st.recovered_wal_files;
    recovery_replay_records_ += st.recovered_records;
    recovery_replay_bytes_ += st.recovered_bytes;
    partitions_.emplace(tenant, std::move(db));
  }
  ++restarts_;
  if (policy_was_running_) {
    policy_.Start();
  }
  co_return Status::Ok();
}

lsm::LsmDb* StorageNode::partition(TenantId tenant) {
  const auto it = partitions_.find(tenant);
  return it == partitions_.end() ? nullptr : it->second.get();
}

std::vector<TenantId> StorageNode::tenants() const {
  std::vector<TenantId> out;
  out.reserve(partitions_.size());
  for (const auto& [tenant, db] : partitions_) {
    out.push_back(tenant);
  }
  return out;
}

sim::Task<Status> StorageNode::Put(TenantId tenant, const std::string& key,
                                   const std::string& value, TraceContext ctx) {
  if (crashed_) {
    co_return Status::Unavailable("node crashed");
  }
  lsm::LsmDb* db = partition(tenant);
  if (db == nullptr) {
    co_return Status::NotFound("unknown tenant");
  }
  obs::SpanCollector* spans = scheduler_.spans();
  const RequestSpan span = BeginRequestSpan(spans, ctx);
  const SimTime start = loop_.Now();
  Status s = co_await db->Put(key, value, span.ctx);
  request_latency_[tenant].put->Record(
      static_cast<uint64_t>(loop_.Now() - start));
  if (s.ok()) {
    // Normalized app-request accounting happens at the protocol layer
    // (§2.2): reservations are in size-normalized 1KB requests. The
    // attribution estimator sees the same normalization for every request
    // (sampled or not) so the observed q̂ denominator stays exact.
    tracker().RecordAppRequest(tenant, AppRequest::kPut, value.size());
    if (spans != nullptr) {
      spans->attribution().RecordRequest(
          tenant, static_cast<uint8_t>(AppRequest::kPut),
          iosched::NormalizedRequests(value.size()));
    }
    if (cache_ != nullptr) {
      cache_->Put(key, value);  // write-through
    }
  }
  EndRequestSpan(spans, span, obs::SpanKind::kRequest, AppRequest::kPut,
                 tenant, start, loop_.Now(), value.size());
  co_return s;
}

sim::Task<Status> StorageNode::Delete(TenantId tenant, const std::string& key,
                                      TraceContext ctx) {
  if (crashed_) {
    co_return Status::Unavailable("node crashed");
  }
  lsm::LsmDb* db = partition(tenant);
  if (db == nullptr) {
    co_return Status::NotFound("unknown tenant");
  }
  obs::SpanCollector* spans = scheduler_.spans();
  const RequestSpan span = BeginRequestSpan(spans, ctx);
  const SimTime start = loop_.Now();
  Status s = co_await db->Delete(key, span.ctx);
  request_latency_[tenant].put->Record(
      static_cast<uint64_t>(loop_.Now() - start));
  if (s.ok()) {
    tracker().RecordAppRequest(tenant, AppRequest::kPut, key.size());
    if (spans != nullptr) {
      spans->attribution().RecordRequest(
          tenant, static_cast<uint8_t>(AppRequest::kPut),
          iosched::NormalizedRequests(key.size()));
    }
    if (cache_ != nullptr) {
      cache_->Erase(key);
    }
  }
  EndRequestSpan(spans, span, obs::SpanKind::kRequest, AppRequest::kPut,
                 tenant, start, loop_.Now(), key.size());
  co_return s;
}

sim::Task<Result<std::string>> StorageNode::Get(TenantId tenant,
                                                const std::string& key,
                                                TraceContext ctx) {
  if (crashed_) {
    co_return Result<std::string>(Status::Unavailable("node crashed"));
  }
  lsm::LsmDb* db = partition(tenant);
  if (db == nullptr) {
    co_return Result<std::string>(Status::NotFound("unknown tenant"));
  }
  obs::SpanCollector* spans = scheduler_.spans();
  const RequestSpan span = BeginRequestSpan(spans, ctx);
  const SimTime start = loop_.Now();
  if (cache_ != nullptr) {
    if (auto hit = cache_->Get(key); hit.has_value()) {
      Result<std::string> out(std::move(*hit));
      // Cache hits consume no IO; they still count as served requests.
      tracker().RecordAppRequest(tenant, AppRequest::kGet, out.value().size());
      if (spans != nullptr) {
        spans->attribution().RecordRequest(
            tenant, static_cast<uint8_t>(AppRequest::kGet),
            iosched::NormalizedRequests(out.value().size()));
      }
      request_latency_[tenant].get->Record(
          static_cast<uint64_t>(loop_.Now() - start));
      EndRequestSpan(spans, span, obs::SpanKind::kRequest, AppRequest::kGet,
                     tenant, start, loop_.Now(), out.value().size());
      co_return out;
    }
  }
  if (options_.enable_read_coalescing) {
    const std::pair<TenantId, std::string> flight_key(tenant, key);
    const auto it = inflight_gets_.find(flight_key);
    if (it != inflight_gets_.end()) {
      // Follower: ride the leader's in-flight lookup. The request is still
      // individually billed and its latency recorded — only the IO is
      // shared. Its span links the leader's lookup it rode.
      ++coalesced_gets_;
      const TraceContext leader_ctx = it->second.leader_ctx;
      sim::OneShot<Result<std::string>> done(loop_);
      it->second.waiters.push_back(&done);
      Result<std::string> out = co_await done.Wait();
      const uint64_t billed = out.ok() ? out.value().size() : 1;
      tracker().RecordAppRequest(tenant, AppRequest::kGet, billed);
      if (spans != nullptr) {
        spans->attribution().RecordRequest(
            tenant, static_cast<uint8_t>(AppRequest::kGet),
            iosched::NormalizedRequests(billed));
      }
      request_latency_[tenant].get->Record(
          static_cast<uint64_t>(loop_.Now() - start));
      EndRequestSpan(spans, span, obs::SpanKind::kCoalescedGet,
                     AppRequest::kGet, tenant, start, loop_.Now(), billed,
                     leader_ctx);
      co_return out;
    }
    // Leader: claim the flight, run the lookup, resolve everyone who
    // joined meanwhile.
    inflight_gets_.emplace(flight_key, GetFlight{span.ctx, {}});
    lsm::LsmDb::GetResult r = co_await db->Get(key, span.ctx);
    Result<std::string> out(std::move(r.status), std::move(r.value));
    // Detach the waiter list before resolving: a resumed follower may
    // immediately issue the same key again and must start a fresh flight.
    auto flight = inflight_gets_.extract(flight_key);
    for (sim::OneShot<Result<std::string>>* w : flight.mapped().waiters) {
      w->Set(out);
    }
    const uint64_t billed = out.ok() ? out.value().size() : 1;
    tracker().RecordAppRequest(tenant, AppRequest::kGet, billed);
    if (spans != nullptr) {
      spans->attribution().RecordRequest(
          tenant, static_cast<uint8_t>(AppRequest::kGet),
          iosched::NormalizedRequests(billed));
    }
    request_latency_[tenant].get->Record(
        static_cast<uint64_t>(loop_.Now() - start));
    if (out.ok() && cache_ != nullptr) {
      cache_->Put(key, out.value());
    }
    EndRequestSpan(spans, span, obs::SpanKind::kRequest, AppRequest::kGet,
                   tenant, start, loop_.Now(), billed);
    co_return out;
  }
  lsm::LsmDb::GetResult r = co_await db->Get(key, span.ctx);
  Result<std::string> out(std::move(r.status), std::move(r.value));
  const uint64_t billed = out.ok() ? out.value().size() : 1;
  tracker().RecordAppRequest(tenant, AppRequest::kGet, billed);
  if (spans != nullptr) {
    spans->attribution().RecordRequest(
        tenant, static_cast<uint8_t>(AppRequest::kGet),
        iosched::NormalizedRequests(billed));
  }
  request_latency_[tenant].get->Record(
      static_cast<uint64_t>(loop_.Now() - start));
  if (out.ok() && cache_ != nullptr) {
    cache_->Put(key, out.value());
  }
  EndRequestSpan(spans, span, obs::SpanKind::kRequest, AppRequest::kGet,
                 tenant, start, loop_.Now(), billed);
  co_return out;
}

sim::Task<lsm::LsmDb::ScanResult> StorageNode::Scan(TenantId tenant,
                                                    const std::string& start,
                                                    const std::string& end,
                                                    size_t limit,
                                                    TraceContext ctx) {
  if (crashed_) {
    lsm::LsmDb::ScanResult out;
    out.status = Status::Unavailable("node crashed");
    co_return out;
  }
  lsm::LsmDb* db = partition(tenant);
  if (db == nullptr) {
    lsm::LsmDb::ScanResult out;
    out.status = Status::NotFound("unknown tenant");
    co_return out;
  }
  obs::SpanCollector* spans = scheduler_.spans();
  const RequestSpan span = BeginRequestSpan(spans, ctx);
  const SimTime start_time = loop_.Now();
  // Scans bypass the object cache: the merge must see a consistent ordered
  // cut of the tree, which point-lookup cache entries cannot provide.
  lsm::LsmDb::ScanResult out = co_await db->Scan(start, end, limit, span.ctx);
  uint64_t billed = 0;
  if (out.status.ok()) {
    for (const auto& [key, value] : out.entries) {
      billed += value.size();
    }
    // An empty or failed range still did index/seek work: bill at least
    // one normalized request, mirroring GET's not-found billing.
    if (billed == 0) {
      billed = 1;
    }
    tracker().RecordAppRequest(tenant, AppRequest::kScan, billed);
    if (spans != nullptr) {
      spans->attribution().RecordRequest(
          tenant, static_cast<uint8_t>(AppRequest::kScan),
          iosched::NormalizedRequests(billed));
    }
  }
  request_latency_[tenant].scan->Record(
      static_cast<uint64_t>(loop_.Now() - start_time));
  EndRequestSpan(spans, span, obs::SpanKind::kRequest, AppRequest::kScan,
                 tenant, start_time, loop_.Now(), billed);
  co_return out;
}

NodeStats StorageNode::Snapshot() const {
  NodeStats s;
  s.time_ns = loop_.Now();
  s.device = device_.stats();
  s.capacity_floor_vops = capacity_.provisionable();
  s.capacity_estimate_vops = capacity_.current_estimate();
  s.scheduler_rounds = scheduler_.rounds();
  if (const obs::TraceRing* tr = scheduler_.trace(); tr != nullptr) {
    s.trace_ring.enabled = true;
    s.trace_ring.capacity = tr->capacity();
    s.trace_ring.recorded = tr->total_recorded();
    s.trace_ring.dropped = tr->dropped();
  }
  if (const obs::SpanCollector* sc = scheduler_.spans(); sc != nullptr) {
    s.spans.enabled = true;
    s.spans.capacity = sc->capacity();
    s.spans.recorded = sc->total_recorded();
    s.spans.dropped = sc->dropped();
    s.spans.minted_traces = sc->minted_traces();
    s.spans.sampled_out = sc->sampled_out();
    s.spans.sample_every = sc->sample_every();
  }
  if (cache_ != nullptr) {
    s.object_cache.enabled = true;
    s.object_cache.hits = cache_->hits();
    s.object_cache.misses = cache_->misses();
    s.object_cache.evictions = cache_->evictions();
    s.object_cache.resident_bytes = cache_->size_bytes();
    s.object_cache.entries = cache_->entries();
  }
  if (block_cache_ != nullptr) {
    s.block_cache.enabled = true;
    s.block_cache.capacity_bytes = block_cache_->capacity_bytes();
    s.block_cache.resident_bytes = block_cache_->resident_bytes();
    s.block_cache.entries = block_cache_->entries();
    s.block_cache.hits = block_cache_->hits();
    s.block_cache.misses = block_cache_->misses();
    s.block_cache.evictions = block_cache_->evictions();
  }
  s.coalesced_gets = coalesced_gets_;
  s.recovery.crashes = crashes_;
  s.recovery.restarts = restarts_;
  s.recovery.wal_files_replayed = recovery_wal_files_;
  s.recovery.replay_records = recovery_replay_records_;
  s.recovery.replay_bytes = recovery_replay_bytes_;
  for (const auto& [tenant, unused] : request_latency_) {
    for (const ssd::IoType type : {ssd::IoType::kRead, ssd::IoType::kWrite}) {
      s.recovery.rereplication_vops += scheduler_.tracker().VopsBy(
          tenant, AppRequest::kPut, iosched::InternalOp::kReplicate, type);
    }
  }
  s.tenants.reserve(partitions_.size());
  for (const auto& [tenant, db] : partitions_) {
    TenantSnapshot t;
    t.tenant = tenant;
    t.reservation = policy_.GetReservation(tenant);
    t.allocation_vops = scheduler_.Allocation(tenant);
    if (const auto it = request_latency_.find(tenant);
        it != request_latency_.end()) {
      t.get_latency = *it->second.get;
      t.put_latency = *it->second.put;
      t.scan_latency = *it->second.scan;
    }
    t.compaction_policy = policy_.CompactionPolicyOf(tenant);
    if (const iosched::TenantLifecycleStats* lc = scheduler_.lifecycle(tenant);
        lc != nullptr) {
      t.io_total = lc->Aggregate();
      for (int a = 0; a < iosched::kNumAppRequests; ++a) {
        for (int i = 0; i < iosched::kNumInternalOps; ++i) {
          const obs::IoClassStats* c = lc->cls[a][i].get();
          if (c == nullptr || c->ops == 0) {
            continue;
          }
          t.io_classes.push_back(IoClassSnapshot{
              static_cast<AppRequest>(a), static_cast<iosched::InternalOp>(i),
              *c});
        }
      }
    }
    t.lsm = db->stats();
    if (const obs::SpanCollector* sc = scheduler_.spans(); sc != nullptr) {
      if (const obs::AttributionMatrix* m = sc->attribution().Of(tenant);
          m != nullptr) {
        t.attribution.observed = true;
        t.attribution.matrix = *m;
      }
      t.attribution.declared = policy_.DeclaredOf(tenant);
      t.attribution.tolerance = options_.attribution_tolerance;
      if (t.attribution.observed && t.attribution.declared.declared) {
        t.attribution.report =
            obs::CompareAttribution(t.attribution.matrix,
                                    t.attribution.declared);
        t.attribution.conformant =
            t.attribution.report.conformant(options_.attribution_tolerance);
      }
    }
    if (const obs::SlaMonitor::TenantSla* sl = policy_.sla().Of(tenant);
        sl != nullptr) {
      t.sla.tracked = true;
      t.sla.sla = *sl;
    }
    s.tenants.push_back(std::move(t));
  }
  const auto& records = policy_.audit_log().records();
  s.audit.assign(records.begin(), records.end());
  return s;
}

}  // namespace libra::kv
