// LSM trace propagation: PUT contexts become memtable origins, FLUSH spans
// link them, COMPACT spans chain through table lineage so compaction device
// IO stays causally attributable to the app requests whose bytes it moves —
// and the whole pipeline is deterministic (byte-identical exports across
// identical runs, including when runs execute on concurrent threads, which
// is what --jobs exercises in the sweep benches).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fs/sim_fs.h"
#include "src/iosched/cost_model.h"
#include "src/iosched/scheduler.h"
#include "src/lsm/db.h"
#include "src/obs/span.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"
#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using iosched::AppRequest;
using iosched::InternalOp;

// LsmRig with span collection enabled and an LSM tuned to compact fast.
struct TraceRig {
  sim::EventLoop loop;
  ssd::SsdDevice device{loop, ssd::Intel320Profile()};
  iosched::IoScheduler sched{
      loop, device,
      std::make_unique<iosched::ExactCostModel>(testing::RigTable()), [] {
        iosched::SchedulerOptions o;
        o.span_capacity = 1 << 14;
        return o;
      }()};
  fs::SimFs fs{sched, device};
  LsmDb db;

  TraceRig()
      : db(loop, fs, sched, 1, "t1", [] {
          LsmOptions o;
          o.write_buffer_bytes = 8 * 1024;
          o.target_file_bytes = 8 * 1024;
          o.l0_compaction_trigger = 2;
          o.max_bytes_level1 = 16 * 1024;
          return o;
        }()) {
    sched.SetAllocation(1, 50000.0);
  }

  void RunTask(sim::Task<void> t) {
    sim::Detach(std::move(t));
    loop.Run();
  }
};

std::string Value(int i) { return std::string(512, 'a' + (i % 26)); }

// Writes enough churn to force flushes and at least one compaction, each
// PUT traced with its own root context.
sim::Task<void> ChurnWrites(TraceRig* rig, int n) {
  for (int i = 0; i < n; ++i) {
    const TraceContext ctx = rig->sched.spans()->MintTrace();
    const Status s = co_await rig->db.Put(
        "key" + std::to_string(i % 40), Value(i), ctx);
    EXPECT_TRUE(s.ok());
    if (ctx.valid()) {
      // The node layer records the request span; emulate it here so the
      // causal chain has kRequest roots to land on.
      obs::SpanRecord rec;
      rec.trace_id = ctx.trace_id;
      rec.span_id = ctx.span_id;
      rec.kind = obs::SpanKind::kRequest;
      rec.app = static_cast<uint8_t>(AppRequest::kPut);
      rec.tenant = 1;
      rec.end_ns = rig->loop.Now();
      rig->sched.spans()->Record(rec);
    }
  }
  co_await rig->db.WaitIdle();
}

TEST(DbTraceTest, FlushSpansLinkOriginPutContexts) {
  TraceRig rig;
  ASSERT_TRUE(rig.db.Open().ok());
  rig.RunTask(ChurnWrites(&rig, 60));

  ASSERT_GT(rig.db.stats().flushes, 0u);
  int flush_spans = 0;
  for (const obs::SpanRecord& s : rig.sched.spans()->Spans()) {
    if (s.kind == obs::SpanKind::kFlush) {
      ++flush_spans;
      EXPECT_GT(s.links.total, 0u) << "flush span with no origin links";
      EXPECT_GT(s.bytes, 0u);
      EXPECT_EQ(s.internal, static_cast<uint8_t>(InternalOp::kFlush));
    }
  }
  EXPECT_GT(flush_spans, 0);
}

TEST(DbTraceTest, CompactionDeviceIoReachesPutRequests) {
  TraceRig rig;
  ASSERT_TRUE(rig.db.Open().ok());
  rig.RunTask(ChurnWrites(&rig, 200));

  ASSERT_GT(rig.db.stats().compactions, 0u);
  const std::vector<obs::SpanRecord> spans = rig.sched.spans()->Spans();
  int compact_ios = 0;
  int linked = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.kind == obs::SpanKind::kDeviceIo &&
        s.internal == static_cast<uint8_t>(InternalOp::kCompact)) {
      ++compact_ios;
      if (obs::CausallyReaches(spans, s.span_id, [](const obs::SpanRecord& r) {
            return r.kind == obs::SpanKind::kRequest &&
                   r.app == static_cast<uint8_t>(AppRequest::kPut);
          })) {
        ++linked;
      }
    }
  }
  EXPECT_GT(compact_ios, 0);
  EXPECT_GT(linked, 0);
}

TEST(DbTraceTest, CompactSpansChainThroughTableLineage) {
  TraceRig rig;
  ASSERT_TRUE(rig.db.Open().ok());
  rig.RunTask(ChurnWrites(&rig, 200));

  const std::vector<obs::SpanRecord> spans = rig.sched.spans()->Spans();
  int compact_spans = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.kind == obs::SpanKind::kCompact) {
      ++compact_spans;
      // A compaction consumes at least the L0 trigger's worth of tables:
      // its parent is the first input's lineage and the rest are links, so
      // fan-in plus merged origins must be non-empty.
      EXPECT_GT(s.links.total, 0u);
      EXPECT_NE(s.parent_span, 0u);
    }
  }
  EXPECT_GT(compact_spans, 0);
}

std::string RunAndExport() {
  TraceRig rig;
  EXPECT_TRUE(rig.db.Open().ok());
  rig.RunTask(ChurnWrites(&rig, 120));
  return obs::SpansToChromeTraceJson(*rig.sched.spans(), 0, "node0");
}

TEST(DbTraceTest, ExportIsByteIdenticalAcrossRunsAndThreads) {
  const std::string serial_a = RunAndExport();
  const std::string serial_b = RunAndExport();
  EXPECT_EQ(serial_a, serial_b);

  // Two concurrent runs (what --jobs=N does to sweep cells) must produce
  // the same bytes as the serial runs.
  std::string from_t1, from_t2;
  std::thread t1([&] { from_t1 = RunAndExport(); });
  std::thread t2([&] { from_t2 = RunAndExport(); });
  t1.join();
  t2.join();
  EXPECT_EQ(from_t1, serial_a);
  EXPECT_EQ(from_t2, serial_a);
}

}  // namespace
}  // namespace libra::lsm
