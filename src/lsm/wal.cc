#include "src/lsm/wal.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace libra::lsm {

WriteAheadLog::WriteAheadLog(fs::SimFs& fs, std::string filename,
                             WalOptions options, WalCounters* counters)
    : fs_(fs),
      filename_(std::move(filename)),
      options_(options),
      counters_(counters) {}

Status WriteAheadLog::Open() {
  if (fs_.Exists(filename_)) {
    auto open = fs_.Open(filename_);
    if (!open.ok()) {
      return open.status();
    }
    file_ = *open;
    return Status::Ok();
  }
  auto created = fs_.Create(filename_);
  if (!created.ok()) {
    return created.status();
  }
  file_ = *created;
  return Status::Ok();
}

sim::Task<Status> WriteAheadLog::Append(const iosched::IoTag& tag,
                                        std::string_view key,
                                        SequenceNumber seq, ValueType type,
                                        std::string_view value) {
  std::string payload;
  payload.reserve(key.size() + value.size() + 32);
  EncodeRecord(&payload, key, seq, type, value);
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32(payload));
  frame += payload;
  if (counters_ != nullptr) {
    ++counters_->appends;
  }
  if (options_.group_commit) {
    co_return co_await AppendBatched(tag, std::move(frame));
  }
  co_return co_await fs_.Append(file_, tag, frame);
}

sim::Task<Status> WriteAheadLog::AppendBatched(iosched::IoTag tag,
                                               std::string frame) {
  sim::OneShot<Status> done(fs_.scheduler().loop());
  ++inflight_;
  pending_.push_back(Pending{std::move(frame), tag, &done});
  // Single-threaded coroutine interleaving makes this check-and-claim
  // race-free: whoever finds no sync in flight becomes the leader and
  // drains the queue; everyone else just waits for their ack.
  if (!sync_inflight_) {
    sync_inflight_ = true;
    while (!pending_.empty()) {
      // Form a bounded batch from the queue head. The first record is
      // always taken (a single frame may exceed the byte cap on its own).
      std::string batch;
      std::vector<iosched::IoShare> manifest;
      std::vector<sim::OneShot<Status>*> members;
      while (!pending_.empty()) {
        const Pending& head = pending_.front();
        if (!members.empty() &&
            (batch.size() + head.frame.size() > options_.group_max_bytes ||
             members.size() >= options_.group_max_records)) {
          break;
        }
        manifest.push_back(
            {head.tag, static_cast<uint32_t>(head.frame.size())});
        batch += head.frame;
        members.push_back(head.done);
        pending_.pop_front();
      }
      if (counters_ != nullptr) {
        ++counters_->batches;
        counters_->batched_records += members.size();
        counters_->max_batch_records = std::max(
            counters_->max_batch_records,
            static_cast<uint64_t>(members.size()));
      }
      // One shared durable append for the whole batch; each member's tag
      // is charged its byte share of the merged IOP's VOP cost.
      const Status s =
          co_await fs_.AppendShared(file_, std::move(manifest), batch);
      // Ack only after durability (the crash-recovery contract); members
      // resume in arrival order. Records that queued during the sync are
      // drained by the next loop iteration.
      for (sim::OneShot<Status>* d : members) {
        d->Set(s);
      }
    }
    sync_inflight_ = false;
  }
  // The leader's own slot was acked inside its loop (set-before-wait).
  const Status result = co_await done.Wait();
  if (--inflight_ == 0 && idle_waiter_) {
    auto h = std::exchange(idle_waiter_, std::coroutine_handle<>{});
    fs_.scheduler().loop().Post([h] { h.resume(); });
  }
  co_return result;
}

sim::Task<void> WriteAheadLog::WaitIdle() {
  while (inflight_ > 0) {
    co_await IdleAwaiter{this};
  }
}

Status WriteAheadLog::Replay(
    const std::function<void(const Record&)>& fn) const {
  if (file_ == fs::kInvalidFile) {
    return Status::FailedPrecondition("log not open");
  }
  // Recovery happens once per DB open, before the node serves traffic, so
  // it reads the raw contents host-side instead of charging a tenant.
  std::string data;
  if (Status s = fs_.PeekContents(file_, &data); !s.ok()) {
    return s;
  }
  size_t offset = 0;
  while (offset + 8 <= data.size()) {
    const uint32_t len = GetFixed32(data, offset);
    const uint32_t crc = GetFixed32(data, offset + 4);
    if (offset + 8 + len > data.size()) {
      break;  // torn tail
    }
    const std::string_view payload(data.data() + offset + 8, len);
    if (Crc32(payload) != crc) {
      break;  // corruption: stop replay
    }
    size_t rec_off = 0;
    Record rec;
    if (!DecodeRecord(payload, &rec_off, &rec)) {
      break;
    }
    fn(rec);
    offset += 8 + len;
  }
  return Status::Ok();
}

Status WriteAheadLog::Remove() {
  file_ = fs::kInvalidFile;
  return fs_.Delete(filename_);
}

uint64_t WriteAheadLog::SizeBytes() const {
  return file_ == fs::kInvalidFile ? 0 : fs_.SizeOf(file_);
}

}  // namespace libra::lsm
