#include "src/cluster/fault_injector.h"

#include <cstdio>
#include <string>

#include "src/sim/task.h"

namespace libra::cluster {

namespace {

sim::Task<void> RunRestart(Cluster* cluster, int node) {
  (void)co_await cluster->RestartNode(node);
}

}  // namespace

Status CheckFaultDelayFloor(const FaultInjectorOptions& options,
                            SimDuration lookahead) {
  if (lookahead <= 0 || options.rpc_delay_rate <= 0.0) {
    return Status::Ok();
  }
  if (options.rpc_delay_min < lookahead) {
    return Status::InvalidArgument(
        "rpc_delay_min " + std::to_string(options.rpc_delay_min) +
        "ns is below the parallel engine's conservative lookahead " +
        std::to_string(lookahead) +
        "ns: an injected delay replaces the request leg's cross-node "
        "latency, so a shorter draw could deliver into an epoch that "
        "already ran and diverge from the single-threaded schedule (raise "
        "rpc_delay_min or lower the engine lookahead)");
  }
  return Status::Ok();
}

FaultInjector::FaultInjector(sim::EventLoop& loop, Cluster& cluster,
                             FaultInjectorOptions options)
    : loop_(loop),
      cluster_(cluster),
      options_(options),
      rng_(options.seed) {
  config_status_ = CheckFaultDelayFloor(options_, cluster_.lookahead());
  if (!config_status_.ok()) {
    std::fprintf(stderr, "FaultInjector: %s\n",
                 config_status_.message().c_str());
    return;  // RPC hook stays uninstalled; crash/GC faults still work
  }
  if (options_.rpc_drop_rate > 0.0 || options_.rpc_delay_rate > 0.0) {
    cluster_.SetRpcFaultInjector(this);
    installed_ = true;
  }
}

FaultInjector::~FaultInjector() {
  if (installed_) {
    cluster_.SetRpcFaultInjector(nullptr);
  }
}

double FaultInjector::NextUniform() {
  // splitmix64 step; top 53 bits give a uniform double in [0, 1).
  rng_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = rng_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void FaultInjector::ScheduleCrash(int node, SimTime at) {
  loop_.ScheduleAt(at, [this, node] {
    if (cluster_.CrashNode(node).ok()) {
      ++crashes_injected_;
    }
  });
}

void FaultInjector::ScheduleRestart(int node, SimTime at) {
  loop_.ScheduleAt(at, [this, node] {
    if (cluster_.NodeAlive(node)) {
      return;  // crash never fired (or already restarted); nothing to do
    }
    ++restarts_injected_;
    sim::Detach(RunRestart(&cluster_, node));
  });
}

void FaultInjector::InjectGcStall(int node, SimDuration stall) {
  cluster_.InjectGcStall(node, stall);
}

RpcFault FaultInjector::OnRpc(iosched::TenantId /*tenant*/, int /*node*/) {
  RpcFault f;
  if (options_.rpc_delay_rate > 0.0 &&
      NextUniform() < options_.rpc_delay_rate) {
    const double span =
        static_cast<double>(options_.rpc_delay_max - options_.rpc_delay_min);
    f.delay = options_.rpc_delay_min +
              static_cast<SimDuration>(NextUniform() * span);
    ++rpcs_delayed_;
  }
  if (options_.rpc_drop_rate > 0.0 && NextUniform() < options_.rpc_drop_rate) {
    f.drop = true;
    ++rpcs_dropped_;
  }
  return f;
}

}  // namespace libra::cluster
