// Mega-scale cluster demo: the parallel epoch engine at full width.
//
// --nodes storage nodes (default 64) and --tenants tenants (default 10000)
// behind the routed Cluster API. Admission control is disabled (its
// all-pairs feasibility check is quadratic in tenants and is exercised by
// the smaller demos); every tenant gets a small global reservation and
// issues --rounds deterministic PUT+readback pairs through the client
// seam, staggered in virtual time. The demo checks that every op succeeded
// and every value read back exactly, then prints aggregate totals and
// engine statistics (epochs, cross-loop messages).
//
// Output is byte-identical for any --sim-threads value at a fixed
// --rpc-latency-us — the CI mega-smoke job runs the scaled-down
// 8-node/1000-tenant config twice and diffs stdout. Wall-clock timing is
// printed to stderr so stdout stays diffable.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/kv_bench_common.h"
#include "src/cluster/cluster.h"
#include "src/metrics/table.h"
#include "src/workload/cluster_workload.h"

namespace libra::bench {
namespace {

using cluster::Cluster;
using iosched::AppRequest;
using iosched::TenantId;

struct MegaFlags {
  int tenants = 10000;
  int rounds = 3;
};

struct Totals {
  uint64_t puts_ok = 0;
  uint64_t puts_err = 0;
  uint64_t gets_ok = 0;
  uint64_t gets_err = 0;
};

sim::Task<void> TenantDriver(sim::EventLoop* loop, cluster::TenantHandle h,
                             int tenant, int rounds, Totals* totals) {
  // Stagger the herd across ~10ms of virtual time (coprime modulus keeps
  // the stagger spread even at power-of-two tenant counts).
  co_await sim::SleepFor(*loop, (tenant % 997 + 1) * 10 * kMicrosecond);
  for (int r = 0; r < rounds; ++r) {
    const std::string key =
        "m" + std::to_string(tenant) + "_" + std::to_string(r);
    const std::string value = workload::MakeValue(key, 256);
    const Status s = co_await h.Put(key, value);
    if (s.ok()) {
      ++totals->puts_ok;
    } else {
      ++totals->puts_err;
    }
    const Result<std::string> g = co_await h.Get(key);
    if (g.ok() && g.value() == value) {
      ++totals->gets_ok;
    } else {
      ++totals->gets_err;
    }
    co_await sim::SleepFor(*loop, 100 * kMillisecond);
  }
}

int RunDemo(const BenchArgs& args, const MegaFlags& mega) {
  const auto wall_start = std::chrono::steady_clock::now();
  SimRig rig = MakeSimRig(args, args.nodes);
  sim::EventLoop& loop = rig.client();

  cluster::ClusterOptions copt;
  copt.num_nodes = args.nodes;
  copt.node_options = PrototypeNodeOptions();
  copt.admission_enabled = false;  // quadratic in tenants; off at this scale
  copt.provisioner.interval = 1 * kSecond;
  std::unique_ptr<Cluster> cl_holder = MakeCluster(rig, copt);
  Cluster& cl = *cl_holder;

  Section(args, "Mega demo: setup");
  std::printf("nodes %d, tenants %d, rounds %d, engine %s\n", cl.num_nodes(),
              mega.tenants, mega.rounds,
              rig.parallel() ? "parallel" : "serial");

  std::vector<cluster::TenantHandle> handles;
  handles.reserve(static_cast<size_t>(mega.tenants));
  for (int t = 1; t <= mega.tenants; ++t) {
    Result<cluster::TenantHandle> h = cl.AddTenant(
        static_cast<TenantId>(t), cluster::GlobalReservation{20.0, 10.0});
    if (!h.ok()) {
      std::fprintf(stderr, "AddTenant(%d): %s\n", t,
                   h.status().message().c_str());
      return 1;
    }
    handles.push_back(h.value());
  }
  std::printf("%zu tenants admitted\n", handles.size());

  cl.Start();
  // Drivers finish around stagger + rounds * 100ms of virtual time; the
  // bounded run stops the periodic timers (provisioner, node policies)
  // shortly after, and the final Run() drains any stragglers.
  const SimTime t_end = loop.Now() +
                        static_cast<SimTime>(mega.rounds) * 100 * kMillisecond +
                        600 * kMillisecond;
  Totals totals;
  {
    sim::TaskGroup group(loop);
    for (int t = 1; t <= mega.tenants; ++t) {
      group.Spawn(TenantDriver(&loop, handles[static_cast<size_t>(t - 1)], t,
                               mega.rounds, &totals));
    }
    rig.RunUntil(t_end);
    cl.Stop();
    rig.Run();
  }

  Section(args, "Mega demo: totals");
  double norm_gets = 0.0;
  double norm_puts = 0.0;
  for (int t = 1; t <= mega.tenants; ++t) {
    norm_gets +=
        cl.GlobalNormalizedTotal(static_cast<TenantId>(t), AppRequest::kGet);
    norm_puts +=
        cl.GlobalNormalizedTotal(static_cast<TenantId>(t), AppRequest::kPut);
  }
  metrics::Table table({"metric", "value"});
  table.AddRow({"puts_ok", std::to_string(totals.puts_ok)});
  table.AddRow({"puts_err", std::to_string(totals.puts_err)});
  table.AddRow({"gets_ok_exact", std::to_string(totals.gets_ok)});
  table.AddRow({"gets_err_or_mismatch", std::to_string(totals.gets_err)});
  table.AddRow({"normalized_gets", metrics::FormatDouble(norm_gets, 1)});
  table.AddRow({"normalized_puts", metrics::FormatDouble(norm_puts, 1)});
  table.AddRow({"virtual_time_ms",
                std::to_string(loop.Now() / kMillisecond)});
  Emit(args, table);

  Section(args, "Mega demo: engine");
  if (rig.parallel()) {
    std::printf("parallel engine: %d loops, lookahead %lld ns, %llu epochs, "
                "%llu cross-loop messages\n",
                rig.multi->num_loops(),
                static_cast<long long>(rig.multi->lookahead()),
                static_cast<unsigned long long>(rig.multi->epochs()),
                static_cast<unsigned long long>(rig.multi->messages_sent()));
  } else {
    std::printf("serial engine: 1 loop\n");
  }

  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  // stderr, not stdout: wall-clock time varies run to run and stdout must
  // stay byte-diffable.
  std::fprintf(stderr, "wall-clock: %.2fs (--sim-threads=%d)\n", wall_secs,
               args.sim_threads);

  const uint64_t expected =
      static_cast<uint64_t>(mega.tenants) * static_cast<uint64_t>(mega.rounds);
  if (totals.puts_err > 0 || totals.gets_err > 0 ||
      totals.puts_ok != expected || totals.gets_ok != expected) {
    std::fprintf(stderr, "FAIL: lost or failed operations\n");
    return 1;
  }
  std::printf("mega contract held: %llu puts and %llu exact readbacks across "
              "%d nodes.\n",
              static_cast<unsigned long long>(totals.puts_ok),
              static_cast<unsigned long long>(totals.gets_ok), cl.num_nodes());
  return 0;
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  libra::bench::BenchArgs args = libra::bench::ParseCommonFlags(argc, argv);
  libra::bench::MegaFlags mega;
  bool nodes_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes_given = true;
    } else if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      mega.tenants = std::max(1, std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      mega.rounds = std::max(1, std::atoi(argv[i] + 9));
    }
  }
  if (!nodes_given) {
    args.nodes = 64;  // this demo's natural scale; --nodes still overrides
  }
  return libra::bench::RunDemo(args, mega);
}
