// Torn-tail fuzzing for WAL recovery (crash-recovery satellite): a crash
// can leave the log truncated at an arbitrary byte and/or with flipped
// bits from a torn sector write. The recovery contract is that Replay
// never fails and never fabricates data — it yields exactly a prefix of
// the appended records, stopping at the first incomplete or
// CRC-mismatched frame.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/lsm/wal.h"
#include "tests/lsm/lsm_rig.h"

namespace libra::lsm {
namespace {

using testing::LsmRig;

const iosched::IoTag kPutTag{1, iosched::AppRequest::kPut,
                             iosched::InternalOp::kNone};

// splitmix64: one seeded stream drives every damage decision, so a failing
// case number reproduces exactly.
uint64_t SplitMix(uint64_t* state) {
  *state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct FuzzRecord {
  std::string key;
  SequenceNumber seq = 0;
  ValueType type = ValueType::kPut;
  std::string value;
};

void AppendAll(LsmRig& rig, WriteAheadLog& wal,
               const std::vector<FuzzRecord>& records,
               std::vector<uint64_t>* boundaries = nullptr) {
  rig.RunTask([&]() -> sim::Task<void> {
    for (const FuzzRecord& r : records) {
      EXPECT_TRUE(
          (co_await wal.Append(kPutTag, r.key, r.seq, r.type, r.value)).ok());
      if (boundaries != nullptr) {
        boundaries->push_back(wal.SizeBytes());
      }
    }
  }());
}

// Replays and checks the prefix property: every record that comes back
// must match the written record at the same position, in full.
size_t ReplayAndCheckPrefix(const WriteAheadLog& wal,
                            const std::vector<FuzzRecord>& written,
                            int case_id) {
  std::vector<std::string> keys;
  std::vector<std::string> values;
  std::vector<SequenceNumber> seqs;
  std::vector<ValueType> types;
  const Status s = wal.Replay([&](const Record& r) {
    keys.emplace_back(r.key);
    values.emplace_back(r.value);
    seqs.push_back(r.seq);
    types.push_back(r.type);
  });
  EXPECT_TRUE(s.ok()) << "case " << case_id << ": " << s.ToString();
  EXPECT_LE(keys.size(), written.size()) << "case " << case_id;
  const size_t n = std::min(keys.size(), written.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(keys[i], written[i].key) << "case " << case_id << " rec " << i;
    EXPECT_EQ(values[i], written[i].value)
        << "case " << case_id << " rec " << i;
    EXPECT_EQ(seqs[i], written[i].seq) << "case " << case_id << " rec " << i;
    EXPECT_EQ(types[i], written[i].type) << "case " << case_id << " rec " << i;
  }
  return keys.size();
}

std::vector<FuzzRecord> MakeRecords(int case_id, int count, uint64_t* rng) {
  std::vector<FuzzRecord> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    FuzzRecord r;
    r.key = "k" + std::to_string(case_id) + "_" + std::to_string(i);
    r.seq = static_cast<SequenceNumber>(i + 1);
    r.type = (SplitMix(rng) % 4 == 0) ? ValueType::kDelete : ValueType::kPut;
    if (r.type == ValueType::kPut) {
      r.value.assign(1 + SplitMix(rng) % 120,
                     static_cast<char>('a' + (i % 26)));
    }
    out.push_back(std::move(r));
  }
  return out;
}

TEST(WalFuzzTest, DamagedLogsAlwaysReplayAnIntactPrefix) {
  LsmRig rig;
  constexpr int kCases = 1000;
  constexpr int kRecords = 8;
  uint64_t rng = 0x7E57ED5EEDULL;
  for (int c = 0; c < kCases; ++c) {
    const std::string name = "wal_fuzz";
    const std::vector<FuzzRecord> written = MakeRecords(c, kRecords, &rng);
    WriteAheadLog wal(rig.fs, name);
    EXPECT_TRUE(wal.Open().ok());
    AppendAll(rig, wal, written);
    const uint64_t full_size = wal.SizeBytes();
    EXPECT_GT(full_size, 0u);

    // Damage: truncate at a random byte, flip a random bit, or both.
    const uint64_t mode = SplitMix(&rng) % 3;
    if (mode == 0 || mode == 2) {
      EXPECT_TRUE(rig.fs.Truncate(name, SplitMix(&rng) % (full_size + 1)).ok());
    }
    const uint64_t cur_size = rig.fs.SizeOf(*rig.fs.Open(name));
    if ((mode == 1 || mode == 2) && cur_size > 0) {
      const uint8_t mask = static_cast<uint8_t>(1u << (SplitMix(&rng) % 8));
      EXPECT_TRUE(
          rig.fs.CorruptByte(name, SplitMix(&rng) % cur_size, mask).ok());
    }

    ReplayAndCheckPrefix(wal, written, c);
    // Extents are a finite resource; release them between cases.
    EXPECT_TRUE(wal.Remove().ok());
  }
}

TEST(WalFuzzTest, EveryTruncationPointReplaysTheExactFramePrefix) {
  // Exhaustive (non-random) sweep: cut the log at every byte, walking
  // downward so one log serves every cut. The replayed count must be
  // exactly the number of frames wholly inside the cut.
  LsmRig rig;
  uint64_t rng = 0xB17F11D5ULL;
  const std::vector<FuzzRecord> written = MakeRecords(0, 6, &rng);
  WriteAheadLog wal(rig.fs, "wal_sweep");
  EXPECT_TRUE(wal.Open().ok());
  std::vector<uint64_t> boundaries;  // cumulative frame end offsets
  AppendAll(rig, wal, written, &boundaries);
  EXPECT_EQ(boundaries.size(), written.size());
  for (uint64_t cut = boundaries.back() + 1; cut-- > 0;) {
    EXPECT_TRUE(rig.fs.Truncate("wal_sweep", cut).ok());
    size_t expected = 0;
    while (expected < boundaries.size() && boundaries[expected] <= cut) {
      ++expected;
    }
    EXPECT_EQ(ReplayAndCheckPrefix(wal, written, static_cast<int>(cut)),
              expected)
        << "cut at byte " << cut;
  }
}

TEST(WalFuzzTest, SingleBitFlipNeverFabricatesARecord) {
  // Flip every bit of a small log one at a time (fresh log per flip is too
  // slow; flip, check, flip back). Replay must stay a clean prefix.
  LsmRig rig;
  uint64_t rng = 0x5EEDF00DULL;
  const std::vector<FuzzRecord> written = MakeRecords(1, 4, &rng);
  WriteAheadLog wal(rig.fs, "wal_bits");
  EXPECT_TRUE(wal.Open().ok());
  AppendAll(rig, wal, written);
  const uint64_t size = wal.SizeBytes();
  for (uint64_t off = 0; off < size; ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      const uint8_t mask = static_cast<uint8_t>(1u << bit);
      EXPECT_TRUE(rig.fs.CorruptByte("wal_bits", off, mask).ok());
      ReplayAndCheckPrefix(wal, written,
                           static_cast<int>(off * 8 + static_cast<uint64_t>(bit)));
      EXPECT_TRUE(rig.fs.CorruptByte("wal_bits", off, mask).ok());  // undo
    }
  }
  // Undamaged again: the full log must replay completely.
  EXPECT_EQ(ReplayAndCheckPrefix(wal, written, -1), written.size());
}

}  // namespace
}  // namespace libra::lsm
