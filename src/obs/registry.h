// Metrics registry: named counters, gauges, and latency histograms keyed by
// (tenant, app request, internal op).
//
// Usage discipline (what keeps the hot path allocation-free): callers
// resolve each series ONCE at setup time — Counter()/Gauge()/Histogram()
// may allocate the series node — and keep the returned reference. The
// returned references are stable for the registry's lifetime (node-based
// map storage), so per-request code touches only the pre-registered object.
//
// The tag fields are plain integers rather than the iosched enums so the
// observability layer stays below every other subsystem; callers cast their
// enums in (AppRequest / InternalOp fit in uint8_t by definition).

#ifndef LIBRA_SRC_OBS_REGISTRY_H_
#define LIBRA_SRC_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "src/obs/histogram.h"

namespace libra::obs {

// Series tag: which (tenant, app request, internal op) a metric describes.
// kNoTenant marks node-global series.
inline constexpr uint32_t kNoTenant = UINT32_MAX;

struct SeriesKey {
  uint32_t tenant = kNoTenant;
  uint8_t app = 0;       // iosched::AppRequest
  uint8_t internal = 0;  // iosched::InternalOp

  friend bool operator<(const SeriesKey& a, const SeriesKey& b) {
    return std::tie(a.tenant, a.app, a.internal) <
           std::tie(b.tenant, b.app, b.internal);
  }
  friend bool operator==(const SeriesKey& a, const SeriesKey& b) {
    return std::tie(a.tenant, a.app, a.internal) ==
           std::tie(b.tenant, b.app, b.internal);
  }
};

class Counter {
 public:
  void Add(double d = 1.0) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. References stay valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name, SeriesKey key = {});
  Gauge& GetGauge(const std::string& name, SeriesKey key = {});
  LatencyHistogram& GetHistogram(const std::string& name, SeriesKey key = {});

  // Lookup without creating; nullptr when the series was never registered.
  const Counter* FindCounter(const std::string& name, SeriesKey key = {}) const;
  const Gauge* FindGauge(const std::string& name, SeriesKey key = {}) const;
  const LatencyHistogram* FindHistogram(const std::string& name,
                                        SeriesKey key = {}) const;

  // Iteration for export: fn(name, key, metric).
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [k, v] : counters_) {
      fn(k.first, k.second, v);
    }
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [k, v] : gauges_) {
      fn(k.first, k.second, v);
    }
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [k, v] : histograms_) {
      fn(k.first, k.second, v);
    }
  }

  size_t num_series() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  using Key = std::pair<std::string, SeriesKey>;
  // std::map: stable addresses across inserts (the registration contract).
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, LatencyHistogram> histograms_;
};

}  // namespace libra::obs

#endif  // LIBRA_SRC_OBS_REGISTRY_H_
