// Move-only `void()` callable with inline storage — the event-loop and
// device-completion callback type.
//
// The simulator schedules one event per IO chunk, so callback plumbing is a
// first-order cost of every experiment. std::function pays a heap
// allocation (libstdc++: captures > 16 bytes) plus an indirect manager call
// per move; SmallFn stores captures up to kInlineBytes in place and moves
// trivially-copyable captures with memcpy, so the schedule/dispatch path
// performs no allocations at all. Captures larger than kInlineBytes still
// work — they fall back to a single heap cell — but the hot paths
// (scheduler chunk completions, device completion events, coroutine
// resumptions) are all sized to fit inline.

#ifndef LIBRA_SRC_SIM_SMALL_FN_H_
#define LIBRA_SRC_SIM_SMALL_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace libra::sim {

class SmallFn {
 public:
  // Budgeted for the largest hot-path capture (scheduler/device completion
  // contexts: a this-pointer, a request, and a couple of words of state).
  static constexpr size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  // Destroys the stored callable (eagerly releasing captures); the SmallFn
  // becomes empty.
  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(buf_);
      }
      ops_ = nullptr;
    }
  }

  // True when the stored callable lives in the inline buffer (test hook for
  // the no-allocation guarantee).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // nullptr => the buffer is relocated with memcpy.
    void (*relocate)(void* dst, void* src);
    // nullptr => trivially destructible.
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static D* Stored(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*Stored<D>(p))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) {
              D* s = Stored<D>(src);
              ::new (dst) D(std::move(*s));
              s->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* p) { Stored<D>(p)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**Stored<D*>(p))(); },
      nullptr,  // relocating the owning pointer is a memcpy
      [](void* p) { delete *Stored<D*>(p); },
      /*inline_storage=*/false,
  };

  void MoveFrom(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      } else {
        ops_->relocate(buf_, other.buf_);
      }
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace libra::sim

#endif  // LIBRA_SRC_SIM_SMALL_FN_H_
