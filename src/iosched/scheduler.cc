#include "src/iosched/scheduler.h"

#include <algorithm>
#include <cassert>

namespace libra::iosched {
namespace {

// Affordability slack for floating-point budget arithmetic.
constexpr double kEps = 1e-9;

// Cheapest plausible chunk (a 1KB read is ~1 VOP by construction); deficits
// at or below this cannot buy anything, so they do not hold a round open.
constexpr double kMinChunkCostVops = 1.0;

}  // namespace

IoScheduler::IoScheduler(sim::EventLoop& loop, ssd::SsdDevice& device,
                         std::unique_ptr<CostModel> cost_model,
                         SchedulerOptions options)
    : loop_(loop),
      device_(device),
      cost_model_(std::move(cost_model)),
      options_(options) {
  assert(cost_model_ != nullptr);
  assert(options_.queue_depth > 0);
  // Deficit carry headroom: must cover the most expensive single chunk
  // *under the active cost model* (classic DRR requires quantum+carry >=
  // max packet cost), or expensive ops would never become affordable and
  // their tenants would starve beyond what the model itself implies.
  const uint32_t max_chunk =
      options_.enable_chunking ? options_.chunk_bytes : 1024 * 1024;
  max_carry_vops_ = std::max(
      {64.0, cost_model_->Cost(ssd::IoType::kRead, max_chunk),
       cost_model_->Cost(ssd::IoType::kWrite, max_chunk)});
  if (options_.trace_capacity > 0) {
    trace_ = std::make_unique<obs::TraceRing>(options_.trace_capacity);
  }
  if (options_.span_capacity > 0) {
    spans_ = std::make_unique<obs::SpanCollector>(options_.span_capacity,
                                                  options_.span_sample_every,
                                                  options_.span_id_seed);
  }
  chunk_ctx_.reserve(static_cast<size_t>(options_.queue_depth));
}

size_t IoScheduler::LowerBound(TenantId id) const {
  size_t lo = 0;
  size_t hi = tenants_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (tenants_[mid].id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

IoScheduler::Tenant* IoScheduler::FindTenant(TenantId id) {
  const size_t i = LowerBound(id);
  return (i < tenants_.size() && tenants_[i].id == id) ? &tenants_[i]
                                                       : nullptr;
}

const IoScheduler::Tenant* IoScheduler::FindTenant(TenantId id) const {
  const size_t i = LowerBound(id);
  return (i < tenants_.size() && tenants_[i].id == id) ? &tenants_[i]
                                                       : nullptr;
}

IoScheduler::Tenant& IoScheduler::GetTenant(TenantId id) {
  const size_t i = LowerBound(id);
  if (i < tenants_.size() && tenants_[i].id == id) {
    return tenants_[i];
  }
  Tenant t;
  t.id = id;
  t.lifecycle = std::make_unique<TenantLifecycleStats>();
  return *tenants_.insert(tenants_.begin() + static_cast<ptrdiff_t>(i),
                          std::move(t));
}

const TenantLifecycleStats* IoScheduler::lifecycle(TenantId tenant) const {
  const Tenant* t = FindTenant(tenant);
  return t == nullptr ? nullptr : t->lifecycle.get();
}

void IoScheduler::SetAllocation(TenantId tenant, double vops_per_sec) {
  assert(vops_per_sec >= 0.0);
  GetTenant(tenant).allocation = vops_per_sec;
}

double IoScheduler::Allocation(TenantId tenant) const {
  const Tenant* t = FindTenant(tenant);
  return t == nullptr ? 0.0 : t->allocation;
}

sim::Task<void> IoScheduler::Read(const IoTag& tag, uint64_t offset,
                                  uint32_t size) {
  return Submit(tag, ssd::IoType::kRead, offset, size, {});
}

sim::Task<void> IoScheduler::Write(const IoTag& tag, uint64_t offset,
                                   uint32_t size) {
  return Submit(tag, ssd::IoType::kWrite, offset, size, {});
}

sim::Task<void> IoScheduler::WriteShared(uint64_t offset, uint32_t size,
                                         std::vector<IoShare> manifest) {
  assert(!manifest.empty());
  if (manifest.size() == 1) {
    // Degenerate batch of one: exactly a plain write.
    return Submit(manifest[0].tag, ssd::IoType::kWrite, offset, size, {});
  }
#ifndef NDEBUG
  uint64_t manifest_bytes = 0;
  for (const IoShare& s : manifest) {
    assert(s.tag.tenant != kInvalidTenant);
    assert(s.bytes > 0);
    manifest_bytes += s.bytes;
  }
  assert(manifest_bytes == size);
#endif
  const IoTag leader = manifest[0].tag;
  return Submit(leader, ssd::IoType::kWrite, offset, size,
                std::move(manifest));
}

IoScheduler::Op* IoScheduler::AllocOp(const IoTag& tag, ssd::IoType type,
                                      uint64_t offset, uint32_t size) {
  Op* op;
  if (!op_free_.empty()) {
    op = op_free_.back();
    op_free_.pop_back();
  } else {
    op_arena_.emplace_back();
    op = &op_arena_.back();
  }
  op->tag = tag;
  op->type = type;
  op->offset = offset;
  op->size = size;
  op->dispatched = 0;
  op->chunks_inflight = 0;
  op->chunks_total = 0;
  op->submit_time = loop_.Now();
  op->first_dispatch = 0;
  op->cost_accum = 0.0;
  op->done = nullptr;
  op->manifest.clear();
  return op;
}

void IoScheduler::FreeOp(Op* op) {
  op->done = nullptr;  // recycled Ops must never touch a stale OneShot
  op_free_.push_back(op);
}

sim::Task<void> IoScheduler::Submit(IoTag tag, ssd::IoType type,
                                    uint64_t offset, uint32_t size,
                                    std::vector<IoShare> manifest) {
  assert(tag.tenant != kInvalidTenant);
  sim::OneShot<bool> done(loop_);
  Tenant& tenant = GetTenant(tag.tenant);  // auto-registers (allocation 0)
  if (size == 0) {
    // Zero-size IO: nothing to dispatch or charge. Completes immediately
    // with zero chunks; recorded in the lifecycle stats so callers can see
    // the (degenerate) op happened.
    tenant.lifecycle->Mutable(tag.app, tag.internal).RecordOp(0, 0, 0, 0);
    if (trace_ != nullptr) {
      const SimTime now = loop_.Now();
      trace_->Record({now, obs::TraceEventType::kSubmit, tag.tenant,
                      static_cast<uint8_t>(tag.app),
                      static_cast<uint8_t>(tag.internal),
                      type == ssd::IoType::kWrite, offset, 0, 0, 0, 0});
      trace_->Record({now, obs::TraceEventType::kComplete, tag.tenant,
                      static_cast<uint8_t>(tag.app),
                      static_cast<uint8_t>(tag.internal),
                      type == ssd::IoType::kWrite, offset, 0, 0, 0, 0});
    }
    done.Set(true);
    co_await done.Wait();
    co_return;
  }
  Op* op = AllocOp(tag, type, offset, size);
  op->done = &done;
  op->manifest = std::move(manifest);
  if (trace_ != nullptr) {
    trace_->Record({op->submit_time, obs::TraceEventType::kSubmit, tag.tenant,
                    static_cast<uint8_t>(tag.app),
                    static_cast<uint8_t>(tag.internal),
                    type == ssd::IoType::kWrite, offset, size, 0, 0, 0});
  }
  if (!tenant.active() && tenant.busy_since < 0) {
    tenant.busy_since = loop_.Now();  // idle -> active: busy period opens
  }
  tenant.queue.push_back(op);
  Pump();
  co_await done.Wait();
}

uint32_t IoScheduler::NextChunkBytes(const Op& op) const {
  const uint32_t remaining = op.size - op.dispatched;
  if (!options_.enable_chunking) {
    return remaining;
  }
  return std::min(remaining, options_.chunk_bytes);
}

SimDuration IoScheduler::ConsumeDemandTime(TenantId tenant) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return 0;
  }
  const SimTime now = loop_.Now();
  if (t->busy_since >= 0) {
    t->busy_accum += now - t->busy_since;
    t->busy_since = now;
  }
  const SimDuration out = t->busy_accum;
  t->busy_accum = 0;
  return out;
}

size_t IoScheduler::backlog() const {
  size_t n = 0;
  for (const Tenant& t : tenants_) {
    n += t.queue.size();
  }
  return n;
}

bool IoScheduler::NewRound() {
  double weight_sum = 0.0;
  int active = 0;
  for (const Tenant& t : tenants_) {
    if (t.active()) {
      weight_sum += t.allocation;
      ++active;
    }
  }
  if (active == 0) {
    return false;
  }
  ++rounds_;
  for (Tenant& t : tenants_) {
    if (!t.active()) {
      // Classic DRR: an idle tenant does not hoard budget (this is what
      // makes the scheduler work-conserving). Debt is kept.
      t.deficit = std::min(t.deficit, 0.0);
      continue;
    }
    // Weight-proportional quantum. With all-zero weights (only best-effort
    // tenants active) fall back to equal shares so the device never idles.
    const double share = weight_sum > 0.0
                             ? t.allocation / weight_sum
                             : 1.0 / static_cast<double>(active);
    const double quantum = share * options_.round_quantum_vops;
    t.deficit = std::min(t.deficit + quantum, quantum + max_carry_vops_);
  }
  return true;
}

uint32_t IoScheduler::AllocChunkCtx() {
  if (chunk_free_ != kNilIndex) {
    const uint32_t idx = chunk_free_;
    chunk_free_ = chunk_ctx_[idx].next_free;
    return idx;
  }
  chunk_ctx_.emplace_back();
  return static_cast<uint32_t>(chunk_ctx_.size() - 1);
}

void IoScheduler::DispatchChunk(Tenant& tenant) {
  assert(!tenant.queue.empty());
  Op* op = tenant.queue.front();
  const uint32_t chunk = NextChunkBytes(*op);
  const double cost = cost_model_->Cost(op->type, chunk);
  tenant.deficit -= cost;
  const uint64_t chunk_offset = op->offset + op->dispatched;
  if (op->dispatched == 0) {
    // First chunk leaves the DRR queue: the queue-wait span ends here.
    op->first_dispatch = loop_.Now();
    if (trace_ != nullptr) {
      trace_->Record({op->first_dispatch, obs::TraceEventType::kDispatch,
                      tenant.id, static_cast<uint8_t>(op->tag.app),
                      static_cast<uint8_t>(op->tag.internal),
                      op->type == ssd::IoType::kWrite, op->offset, op->size, 0,
                      0, 0});
    }
  }
  op->dispatched += chunk;
  ++op->chunks_inflight;
  ++op->chunks_total;
  ++tenant.chunks_inflight;
  ++inflight_;
  if (op->fully_dispatched()) {
    tenant.queue.pop_front();  // op stays alive in the pool until completion
  }

  const uint32_t ctx_idx = AllocChunkCtx();
  ChunkCtx& ctx = chunk_ctx_[ctx_idx];
  ctx.op = op;
  ctx.tenant = tenant.id;
  ctx.cost = cost;
  ctx.chunk = chunk;
  ctx.shares.clear();
  if (!op->manifest.empty()) {
    // Shared chunk: slice the manifest by this chunk's byte range and
    // pre-split the chunk's VOP cost byte-proportionally. All but the last
    // overlapping share take their byte fraction; the last takes the
    // remainder, so the slice costs reconstruct `cost` bit-for-bit.
    const uint64_t lo = chunk_offset - op->offset;
    const uint64_t hi = lo + chunk;
    uint64_t pos = 0;
    for (const IoShare& s : op->manifest) {
      const uint64_t s_lo = pos;
      pos += s.bytes;
      if (pos <= lo) {
        continue;
      }
      if (s_lo >= hi) {
        break;
      }
      const uint32_t overlap = static_cast<uint32_t>(std::min(pos, hi) -
                                                     std::max(s_lo, lo));
      ctx.shares.push_back({s.tag, overlap, 0.0});
    }
    assert(!ctx.shares.empty());
    double assigned = 0.0;
    for (size_t i = 0; i + 1 < ctx.shares.size(); ++i) {
      ctx.shares[i].cost = cost * (static_cast<double>(ctx.shares[i].bytes) /
                                   static_cast<double>(chunk));
      assigned += ctx.shares[i].cost;
    }
    ctx.shares.back().cost = cost - assigned;
  }
  device_.Submit(ssd::IoRequest{op->type, chunk_offset, chunk},
                 [this, ctx_idx] { OnChunkComplete(ctx_idx); });
}

void IoScheduler::OnChunkComplete(uint32_t index) {
  // Record against the slot, copy the scalars out, then recycle it: the
  // Pump below may dispatch into it.
  ChunkCtx& slot = chunk_ctx_[index];
  Op* op = slot.op;
  const TenantId tenant_id = slot.tenant;
  const double cost = slot.cost;
  const uint32_t chunk = slot.chunk;
  if (slot.shares.empty()) {
    tracker_.RecordIo(op->tag, op->type, chunk, cost);
    if (spans_ != nullptr) {
      // Same cost value, same call order as the tracker: the estimator's
      // per-tenant VOP totals reproduce the tracker's bit-for-bit.
      spans_->attribution().RecordIo(op->tag.tenant,
                                     static_cast<uint8_t>(op->tag.app),
                                     static_cast<uint8_t>(op->tag.internal),
                                     cost);
    }
  } else {
    // Shared chunk: each contributor is charged its pre-split exact share.
    for (const ChunkShare& s : slot.shares) {
      tracker_.RecordIoShare(s.tag, op->type, s.bytes, s.cost);
      if (spans_ != nullptr) {
        spans_->attribution().RecordIo(s.tag.tenant,
                                       static_cast<uint8_t>(s.tag.app),
                                       static_cast<uint8_t>(s.tag.internal),
                                       s.cost);
      }
    }
    slot.shares.clear();  // free-list invariant: recycled slots hold none
  }
  if (spans_ != nullptr) {
    op->cost_accum += cost;
  }
  slot.next_free = chunk_free_;
  chunk_free_ = index;

  --op->chunks_inflight;
  Tenant& t = *FindTenant(tenant_id);  // tenants are never removed
  --t.chunks_inflight;
  if (op->fully_dispatched() && op->chunks_inflight == 0) {
    const SimTime now = loop_.Now();
    const uint64_t queue_wait =
        static_cast<uint64_t>(op->first_dispatch - op->submit_time);
    const uint64_t service =
        static_cast<uint64_t>(now - op->first_dispatch);
    t.lifecycle->Mutable(op->tag.app, op->tag.internal)
        .RecordOp(queue_wait, service, op->chunks_total, op->size);
    if (trace_ != nullptr) {
      trace_->Record({now, obs::TraceEventType::kComplete, tenant_id,
                      static_cast<uint8_t>(op->tag.app),
                      static_cast<uint8_t>(op->tag.internal),
                      op->type == ssd::IoType::kWrite, op->offset, op->size,
                      op->chunks_total, queue_wait, service});
    }
    if (spans_ != nullptr) {
      EmitDeviceIoSpan(*op, now);
    }
    op->done->Set(true);
    FreeOp(op);  // last reference: recycle for the next Submit
  }
  if (!t.active() && t.busy_since >= 0) {
    // Active -> idle (a same-instant resubmission inside the Set above
    // keeps the tenant active, so a saturating closed loop never closes
    // its period; a genuine zero-duration gap accumulates zero anyway).
    t.busy_accum += loop_.Now() - t.busy_since;
    t.busy_since = -1;
  }
  --inflight_;
  // Deferred so that same-instant worker resumptions (the Set above)
  // enqueue their next op first — otherwise a closed-loop tenant looks
  // idle for the zero-duration gap between completion and resubmission
  // and a round change in that gap would wipe its budget.
  loop_.Post([this] { Pump(); });
}

void IoScheduler::EmitDeviceIoSpan(const Op& op, SimTime now) {
  // Parent: the op's own context, or — for a shared op scheduled under an
  // untraced leader — the first traced manifest rider.
  TraceContext parent = op.tag.ctx;
  if (!parent.valid()) {
    for (const IoShare& s : op.manifest) {
      if (s.tag.ctx.valid()) {
        parent = s.tag.ctx;
        break;
      }
    }
    if (!parent.valid()) {
      return;  // nothing traced rode this op
    }
  }
  obs::SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.span_id = spans_->MintChild(parent).span_id;
  rec.parent_span = parent.span_id;
  rec.kind = obs::SpanKind::kDeviceIo;
  rec.app = static_cast<uint8_t>(op.tag.app);
  rec.internal = static_cast<uint8_t>(op.tag.internal);
  rec.is_write = op.type == ssd::IoType::kWrite;
  rec.tenant = op.tag.tenant;
  rec.start_ns = op.submit_time;
  rec.end_ns = now;
  rec.bytes = op.size;
  rec.vops = op.cost_accum;
  // A group-committed IOP carries every rider's context: link the traced
  // ones beyond the parent so followers' traces reach this device IO.
  for (const IoShare& s : op.manifest) {
    if (s.tag.ctx.valid() && !(s.tag.ctx == parent)) {
      rec.links.Add(s.tag.ctx);
    }
  }
  spans_->Record(rec);
}

void IoScheduler::Pump() {
  if (pumping_) {
    return;
  }
  pumping_ = true;
  // Bound successive budget refills within one pump so a queue whose head
  // chunk exceeds the deficit cap cannot spin the round counter.
  int refills_left = 8;
  while (inflight_ < options_.queue_depth) {
    // Scan the ring from the cursor for an eligible (work + budget) tenant:
    // a single contiguous rotation over the id-sorted tenant vector.
    Tenant* chosen = nullptr;
    bool any_queued = false;
    const size_t n = tenants_.size();
    const size_t start = LowerBound(ring_cursor_);
    for (size_t k = 0; k < n; ++k) {
      size_t i = start + k;
      if (i >= n) {
        i -= n;
      }
      Tenant& t = tenants_[i];
      if (t.queue.empty()) {
        continue;
      }
      any_queued = true;
      const Op& head = *t.queue.front();
      const double cost = cost_model_->Cost(head.type, NextChunkBytes(head));
      if (t.deficit + kEps >= cost) {
        chosen = &t;
        break;
      }
    }

    if (chosen != nullptr) {
      // DRR: keep serving this tenant while it stays eligible (the cursor
      // only moves past it when it runs out of budget or work).
      ring_cursor_ = chosen->id;
      DispatchChunk(*chosen);
      continue;
    }

    if (!any_queued) {
      break;  // nothing to dispatch
    }

    // The round stays open while some tenant still has usable budget and
    // in-flight work: its closed-loop workers will resubmit on completion,
    // and refilling now would let cheap-op tenants outrun their shares.
    bool holds_round_open = false;
    for (const Tenant& t : tenants_) {
      if (t.chunks_inflight > 0 && t.queue.empty() &&
          t.deficit > kMinChunkCostVops) {
        holds_round_open = true;
        break;
      }
    }
    if (holds_round_open) {
      break;  // a completion will re-enter Pump
    }

    if (refills_left-- <= 0 || !NewRound()) {
      // Refills exhausted or impossible: force the ring-next queued tenant
      // into debt so the scheduler always makes progress (the debt is
      // repaid out of future quanta, preserving long-run proportions).
      for (Tenant& t : tenants_) {
        if (!t.queue.empty()) {
          DispatchChunk(t);
          break;
        }
      }
    }
  }
  pumping_ = false;
}

}  // namespace libra::iosched
