// On-disk encoding primitives for the LSM engine: fixed/varint-free little-
// endian integer coding, CRC32 for WAL record integrity, and the internal
// key ordering (user key ascending, sequence number descending).

#ifndef LIBRA_SRC_LSM_FORMAT_H_
#define LIBRA_SRC_LSM_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace libra::lsm {

// Record types, shared by the WAL and SSTables.
enum class ValueType : uint8_t {
  kPut = 1,
  kDelete = 2,
};

using SequenceNumber = uint64_t;

// --- integer coding (little endian, fixed width) ---

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

// Reads from `src` at `offset`; callers guarantee bounds.
uint32_t GetFixed32(std::string_view src, size_t offset);
uint64_t GetFixed64(std::string_view src, size_t offset);

// --- string coding: [len u32][bytes] ---

void PutLengthPrefixed(std::string* dst, std::string_view s);

// Parses a length-prefixed string at *offset, advancing it. Returns false
// on truncation.
bool GetLengthPrefixed(std::string_view src, size_t* offset,
                       std::string_view* out);

// --- CRC32 (Castagnoli polynomial) ---
//
// Computed slice-by-8 in software, or with the CPU's CRC32C instructions
// (SSE4.2 / ARMv8 CRC) when the host supports them; the implementation is
// picked once at startup and both produce identical values (the classic
// reflected CRC32C, e.g. Crc32("123456789") == 0xE3069283).

uint32_t Crc32(std::string_view data);

namespace internal {

// Exposed so tests can pin both paths to the golden vectors regardless of
// which one the runtime dispatch picks.
uint32_t Crc32Software(std::string_view data);
uint32_t Crc32Hardware(std::string_view data);  // valid only if supported
bool HasHardwareCrc32();

}  // namespace internal

// --- bloom filter (per-SSTable filter block) ---
//
// LevelDB-style double-hashed bloom filter over user keys: a bit array
// sized `bits_per_key * n` followed by one byte holding the probe count k.
// Build and probe are pure functions of the key bytes — deterministic
// across hosts — and the encoding is self-describing, so a reader needs no
// knob to probe a filter it finds on disk. No false negatives, ever; the
// false-positive rate at 10 bits/key is ~1%.

// Appends the filter block for `keys` (user keys; duplicates are harmless)
// to `*dst`. `bits_per_key` 0 appends nothing (filters off).
void BloomFilterBuild(const std::vector<std::string>& keys,
                      uint32_t bits_per_key, std::string* dst);

// True when `key` may be in the set `filter` was built from; false only
// when it definitely is not. An empty or malformed filter answers "maybe"
// (never wrongly excludes).
bool BloomFilterMayContain(std::string_view filter, std::string_view key);

// --- internal key ordering ---

// Entries are ordered by user key ascending and, within a key, sequence
// number descending — so the freshest version of a key is found first.
// Returns <0, 0, >0 like memcmp.
int CompareInternalKey(std::string_view a_user, SequenceNumber a_seq,
                       std::string_view b_user, SequenceNumber b_seq);

// One decoded record.
struct Record {
  std::string_view key;
  std::string_view value;
  SequenceNumber seq = 0;
  ValueType type = ValueType::kPut;
};

// Encodes a record as [key][seq][type][value] with length prefixes.
void EncodeRecord(std::string* dst, std::string_view key,
                  SequenceNumber seq, ValueType type, std::string_view value);

// Decodes a record at *offset, advancing it. Returns false on truncation.
bool DecodeRecord(std::string_view src, size_t* offset, Record* out);

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_FORMAT_H_
