// Figure 10: VOP throughput of the LevelDB-like prototype under
// application-level workloads.
//  (a) pure GET and pure PUT workloads across request sizes;
//  (b) mixed GET:PUT ratios over a (GET size x PUT size) grid, log-normal
//      sizes with sigma 4K;
//  (c) the distribution per ratio and the provisionable-floor analysis:
//      the fraction of achievable throughput covered by the VOP floor.

#include <algorithm>
#include <cstdio>

#include "bench/kv_bench_common.h"
#include "src/iosched/capacity.h"

namespace libra::bench {
namespace {

double RunKvCell(const BenchArgs& args, double get_fraction, double get_kb,
                 double put_kb, double sigma) {
  sim::EventLoop loop;
  kv::NodeOptions opt = PrototypeNodeOptions();
  kv::StorageNode node(loop, opt);
  const iosched::TenantId tenant = 1;
  (void)node.AddTenant(tenant, {1000.0, 1000.0});

  workload::KvWorkloadSpec spec;
  spec.get_fraction = get_fraction;
  spec.get_size = {get_kb * 1024.0, sigma};
  spec.put_size = {put_kb * 1024.0, sigma};
  spec.live_bytes_target = args.full ? 32ULL * kMiB : 10ULL * kMiB;
  spec.disjoint_get_range = true;
  // Enough closed-loop workers to saturate the device queue even though a
  // GET costs two serial IOs (index block, then data block).
  spec.workers = 32;
  workload::KvTenantWorkload wl(loop, node, tenant, spec, 31);
  RunPreloads(loop, {&wl});

  const SimDuration warmup = 2 * kSecond;
  const SimDuration measure = args.full ? 6 * kSecond : 2 * kSecond;
  double vops_at_warm = 0.0;
  double vops_at_end = 0.0;
  {
    sim::TaskGroup group(loop);
    const SimTime start = loop.Now();
    wl.Start(group, start + warmup + measure);
    loop.ScheduleAt(start + warmup,
                    [&] { vops_at_warm = node.tracker().total_vops(); });
    // Snapshot exactly at window end: the post-deadline drain (background
    // compactions finishing) must not count against a fixed denominator.
    loop.ScheduleAt(start + warmup + measure,
                    [&] { vops_at_end = node.tracker().total_vops(); });
    loop.Run();
  }
  return (vops_at_end - vops_at_warm) / ToSeconds(measure);
}

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  using libra::SampleSet;
  const BenchArgs args = ParseArgs(argc, argv);
  const double floor_kvops = libra::iosched::kIntel320VopFloor / 1000.0;

  // (a) pure workloads.
  Section(args, "Figure 10a: pure GET / pure PUT VOP throughput (kVOP/s)");
  {
    libra::metrics::Table out({"size_kb", "pure_GET", "pure_PUT"});
    for (uint32_t kb : SweepSizesKb(args.full)) {
      const double g = RunKvCell(args, 1.0, kb, kb, 0.0);
      const double p = RunKvCell(args, 0.0, kb, kb, 0.0);
      out.AddNumericRow(std::to_string(kb), {g / 1000.0, p / 1000.0}, 1);
    }
    Emit(args, out);
  }

  // (b) mixed ratios over the size grid; (c) distributions.
  const double ratios[] = {0.75, 0.50, 0.25, 0.01};
  const char* names[] = {"75:25", "50:50", "25:75", "1:99"};
  const auto sizes = SweepSizesKb(args.full);
  SampleSet all;
  libra::metrics::Table cdf({"GET:PUT", "min", "p25", "p50", "p80", "max",
                             "floor_over_p80"});
  for (size_t i = 0; i < std::size(ratios); ++i) {
    Section(args, std::string("Figure 10b: ") + names[i] +
                      " GET:PUT, sigma 4K (kVOP/s)");
    std::vector<std::string> header = {"put\\get_kb"};
    for (uint32_t g : sizes) {
      header.push_back(std::to_string(g));
    }
    libra::metrics::Table map(header);
    SampleSet set;
    for (uint32_t p : sizes) {
      std::vector<double> row;
      for (uint32_t g : sizes) {
        const double v = RunKvCell(args, ratios[i], g, p, 4096.0);
        row.push_back(v / 1000.0);
        set.Add(v / 1000.0);
        all.Add(v / 1000.0);
      }
      map.AddNumericRow(std::to_string(p), row, 1);
    }
    Emit(args, map);
    cdf.AddNumericRow(names[i],
                      {set.Min(), set.Percentile(0.25), set.Median(),
                       set.Percentile(0.80), set.Max(),
                       floor_kvops / set.Percentile(0.80)},
                      2);
  }
  Section(args, "Figure 10c: per-ratio VOP throughput distribution (kVOP/s)");
  Emit(args, cdf);
  std::printf(
      "VOP floor %.1f kVOP/s; over all ratio cells: p80 %.1f kVOP/s -> "
      "floor covers %.0f%% of the 80th percentile (paper: >= 69%%).\n",
      floor_kvops, all.Percentile(0.80),
      100.0 * floor_kvops / all.Percentile(0.80));
  return 0;
}
