
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lsm/db_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/db_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/db_test.cc.o.d"
  "/root/repo/tests/lsm/format_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/format_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/format_test.cc.o.d"
  "/root/repo/tests/lsm/memtable_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/memtable_test.cc.o.d"
  "/root/repo/tests/lsm/skiplist_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/skiplist_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/skiplist_test.cc.o.d"
  "/root/repo/tests/lsm/sstable_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/sstable_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/sstable_test.cc.o.d"
  "/root/repo/tests/lsm/wal_test.cc" "tests/CMakeFiles/lsm_test.dir/lsm/wal_test.cc.o" "gcc" "tests/CMakeFiles/lsm_test.dir/lsm/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/libra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/libra_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/libra_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/iosched/CMakeFiles/libra_iosched.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/libra_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/libra_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/libra_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/libra_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
