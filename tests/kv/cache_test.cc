#include "src/kv/cache.h"

#include <gtest/gtest.h>

namespace libra::kv {
namespace {

TEST(LruCacheTest, MissOnEmpty) {
  LruCache cache(1024);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, PutThenGet) {
  LruCache cache(1024);
  cache.Put("key", "value");
  const auto v = cache.Get("key");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "value");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCacheTest, OverwriteUpdatesValueAndBytes) {
  LruCache cache(1024);
  cache.Put("key", "short");
  cache.Put("key", "a much longer value");
  EXPECT_EQ(*cache.Get("key"), "a much longer value");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_bytes(), 3 + 19u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.Put("a", std::string(9, '1'));  // 10 bytes each
  cache.Put("b", std::string(9, '2'));
  cache.Put("c", std::string(9, '3'));
  EXPECT_EQ(cache.entries(), 3u);
  // Touch "a" so "b" becomes LRU; inserting "d" evicts "b".
  cache.Get("a");
  cache.Put("d", std::string(9, '4'));
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
}

TEST(LruCacheTest, OversizedObjectNotAdmitted) {
  LruCache cache(10);
  cache.Put("k", std::string(100, 'x'));
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(LruCacheTest, OversizedOverwriteDropsStaleEntry) {
  LruCache cache(20);
  cache.Put("k", "small");
  ASSERT_TRUE(cache.Get("k").has_value());
  cache.Put("k", std::string(100, 'x'));  // too big: must not serve stale
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST(LruCacheTest, EraseRemovesEntry) {
  LruCache cache(100);
  cache.Put("k", "v");
  cache.Erase("k");
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.size_bytes(), 0u);
  cache.Erase("never-existed");  // no-op
}

TEST(LruCacheTest, EvictionCounterTracksCapacityEvictions) {
  LruCache cache(30);
  cache.Put("a", std::string(9, '1'));  // 10 bytes each
  cache.Put("b", std::string(9, '2'));
  cache.Put("c", std::string(9, '3'));
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Put("d", std::string(9, '4'));  // over budget: evicts "a"
  EXPECT_EQ(cache.evictions(), 1u);
  cache.Put("e", std::string(9, '5'));
  EXPECT_EQ(cache.evictions(), 2u);
  // Explicit Erase is invalidation, not a capacity eviction.
  cache.Erase("e");
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCacheTest, ByteBudgetRespectedUnderChurn) {
  LruCache cache(1000);
  for (int i = 0; i < 500; ++i) {
    cache.Put("key" + std::to_string(i), std::string(50, 'v'));
    EXPECT_LE(cache.size_bytes(), 1000u);
  }
}

}  // namespace
}  // namespace libra::kv
