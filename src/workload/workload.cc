#include "src/workload/workload.h"

#include <algorithm>
#include <cassert>

namespace libra::workload {

namespace {

LogNormalSize MakeDist(const SizeSpec& s) {
  return LogNormalSize(s.mean_bytes, s.sigma_bytes, s.min_bytes, s.max_bytes);
}

}  // namespace

std::string MakeValue(std::string_view key, uint64_t size) {
  std::string out;
  out.reserve(size);
  while (out.size() < size) {
    out.append(key.data(), std::min<uint64_t>(key.size(), size - out.size()));
    if (out.size() < size) {
      out.push_back('|');
    }
  }
  out.resize(size);
  return out;
}

// --- RawIoWorkload ---

RawIoWorkload::RawIoWorkload(sim::EventLoop& loop,
                             iosched::IoScheduler& scheduler,
                             iosched::TenantId tenant, RawIoSpec spec,
                             uint64_t seed)
    : loop_(loop),
      scheduler_(scheduler),
      tenant_(tenant),
      spec_(spec),
      rng_(seed),
      read_dist_(MakeDist(spec.read_size)),
      write_dist_(MakeDist(spec.write_size)) {}

void RawIoWorkload::Start(sim::TaskGroup& group, SimTime end_time) {
  for (int w = 0; w < spec_.workers; ++w) {
    group.Spawn(Worker(end_time));
  }
}

sim::Task<void> RawIoWorkload::Worker(SimTime end_time) {
  while (loop_.Now() < end_time) {
    const bool is_read = rng_.Bernoulli(spec_.read_fraction);
    const uint64_t size = is_read ? read_dist_.Sample(rng_)
                                  : write_dist_.Sample(rng_);
    const uint64_t aligned = std::max<uint64_t>(size, 1);
    const uint64_t slots =
        std::max<uint64_t>(1, spec_.working_set_bytes / aligned);
    const uint64_t offset = rng_.NextU64(slots) * aligned;
    const iosched::IoTag tag{
        tenant_, is_read ? iosched::AppRequest::kGet : iosched::AppRequest::kPut,
        iosched::InternalOp::kNone};
    if (is_read) {
      co_await scheduler_.Read(tag, offset, static_cast<uint32_t>(aligned));
    } else {
      co_await scheduler_.Write(tag, offset, static_cast<uint32_t>(aligned));
    }
    ++ops_completed_;
  }
}

// --- KvTenantWorkload ---

KvTenantWorkload::KvTenantWorkload(sim::EventLoop& loop, kv::StorageNode& node,
                                   iosched::TenantId tenant,
                                   KvWorkloadSpec spec, uint64_t seed)
    : loop_(loop), node_(node), tenant_(tenant), spec_(spec), rng_(seed) {
  get_dist_ = std::make_unique<LogNormalSize>(MakeDist(spec_.get_size));
  put_dist_ = std::make_unique<LogNormalSize>(MakeDist(spec_.put_size));
  put_keys_ = std::max<uint64_t>(
      16, spec_.live_bytes_target /
              static_cast<uint64_t>(std::max(1.0, spec_.put_size.mean_bytes)));
  get_keys_ =
      spec_.disjoint_get_range
          ? std::max<uint64_t>(
                16, spec_.live_bytes_target /
                        static_cast<uint64_t>(
                            std::max(1.0, spec_.get_size.mean_bytes)))
          : put_keys_;
  if (spec_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfGenerator>(std::max(get_keys_, put_keys_),
                                            spec_.zipf_theta);
  }
}

std::string KvTenantWorkload::GetKey(uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), spec_.disjoint_get_range ? "g%010llu" : "p%010llu",
                static_cast<unsigned long long>(index));
  return spec_.key_prefix + buf;
}

std::string KvTenantWorkload::PutKey(uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "p%010llu",
                static_cast<unsigned long long>(index));
  return spec_.key_prefix + buf;
}

sim::Task<void> KvTenantWorkload::Preload() {
  // PUT range (churned by the workload).
  for (uint64_t i = 0; i < put_keys_; ++i) {
    const std::string key = PutKey(i);
    co_await node_.Put(tenant_, key, MakeValue(key, put_dist_->Sample(rng_)));
  }
  // GET range (stable objects), when disjoint.
  if (spec_.disjoint_get_range) {
    for (uint64_t i = 0; i < get_keys_; ++i) {
      const std::string key = GetKey(i);
      co_await node_.Put(tenant_, key,
                         MakeValue(key, get_dist_->Sample(rng_)));
    }
  }
}

void KvTenantWorkload::Start(sim::TaskGroup& group, SimTime end_time) {
  for (int w = 0; w < spec_.workers; ++w) {
    group.Spawn(Worker(end_time));
  }
}

void KvTenantWorkload::SwapMix(const KvWorkloadSpec& spec) {
  spec_.get_fraction = spec.get_fraction;
  spec_.get_absent_fraction = spec.get_absent_fraction;
  spec_.scan_fraction = spec.scan_fraction;
  spec_.scan_span = spec.scan_span;
  spec_.get_size = spec.get_size;
  spec_.put_size = spec.put_size;
  get_dist_ = std::make_unique<LogNormalSize>(MakeDist(spec_.get_size));
  put_dist_ = std::make_unique<LogNormalSize>(MakeDist(spec_.put_size));
  // Key ranges deliberately stay as preloaded.
}

sim::Task<void> KvTenantWorkload::Worker(SimTime end_time) {
  while (loop_.Now() < end_time) {
    // The scan_fraction > 0 short-circuit is load-bearing: at the default 0
    // no Bernoulli is drawn, so the GET/PUT RNG stream (and with it every
    // historical run) is byte-for-byte unchanged.
    if (spec_.scan_fraction > 0.0 && rng_.Bernoulli(spec_.scan_fraction)) {
      const uint64_t idx = rng_.NextU64(get_keys_);
      const lsm::LsmDb::ScanResult r = co_await node_.Scan(
          tenant_, GetKey(idx), std::string(),
          static_cast<size_t>(std::max(1, spec_.scan_span)));
      scan_keys_returned_ += r.entries.size();
      ++scans_done_;
    } else if (rng_.Bernoulli(spec_.get_fraction)) {
      const uint64_t idx = zipf_ != nullptr ? zipf_->Sample(rng_) % get_keys_
                                            : rng_.NextU64(get_keys_);
      std::string key = GetKey(idx);
      // Same short-circuit contract as scan_fraction: at the default 0 no
      // Bernoulli is drawn. "#" sorts above the digit tail, so the miss key
      // lands between this live key and its successor — in range for table
      // pruning, absent from every filter.
      if (spec_.get_absent_fraction > 0.0 &&
          rng_.Bernoulli(spec_.get_absent_fraction)) {
        key.push_back('#');
      }
      co_await node_.Get(tenant_, key);
      ++gets_done_;
    } else {
      const uint64_t idx = zipf_ != nullptr ? zipf_->Sample(rng_) % put_keys_
                                            : rng_.NextU64(put_keys_);
      const std::string key = PutKey(idx);
      co_await node_.Put(tenant_, key,
                         MakeValue(key, put_dist_->Sample(rng_)));
      ++puts_done_;
    }
  }
}

}  // namespace libra::workload
