#include "src/iosched/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/iosched/cost_model.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/calibration.h"
#include "src/ssd/device.h"
#include "src/ssd/profile.h"

namespace libra::iosched {
namespace {

// One shared calibration for the whole file (the expensive step).
const ssd::CalibrationTable& Table() {
  static const ssd::CalibrationTable* table = [] {
    ssd::CalibrationOptions opt;
    opt.warmup = 200 * kMillisecond;
    opt.measure = 500 * kMillisecond;
    opt.working_set_bytes = 256 * kMiB;
    return new ssd::CalibrationTable(
        ssd::Calibrate(ssd::Intel320Profile(), opt));
  }();
  return *table;
}

struct Rig {
  sim::EventLoop loop;
  ssd::SsdDevice device;
  IoScheduler sched;
  Rng rng{101};

  explicit Rig(SchedulerOptions options = {})
      : device(loop, ssd::Intel320Profile()),
        sched(loop, device, std::make_unique<ExactCostModel>(Table()),
              options) {
    device.Prefill(1ULL * kGiB);
  }

  // Backlogged worker issuing `size`-byte ops of `type` until `end`.
  sim::Task<void> Worker(TenantId tenant, ssd::IoType type, uint32_t size,
                         SimTime end) {
    while (loop.Now() < end) {
      const uint64_t slots = (1ULL * kGiB) / size;
      const uint64_t offset = rng.NextU64(slots) * size;
      IoTag tag{tenant,
                type == ssd::IoType::kRead ? AppRequest::kGet : AppRequest::kPut,
                InternalOp::kNone};
      if (type == ssd::IoType::kRead) {
        co_await sched.Read(tag, offset, size);
      } else {
        co_await sched.Write(tag, offset, size);
      }
    }
  }
};

TEST(SchedulerTest, SingleOpCompletes) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  bool done = false;
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0, 4096);
    done = true;
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.sched.inflight(), 0);
  EXPECT_EQ(rig.sched.backlog(), 0u);
}

TEST(SchedulerTest, TracksVopCostPerTenant) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0, 1024);
  };
  sim::Detach(t());
  rig.loop.Run();
  // A 1KB read costs ~1 VOP by construction.
  EXPECT_NEAR(rig.sched.tracker().Stats(0).vops, 1.0, 0.1);
}

TEST(SchedulerTest, ChunkingSplitsLargeOps) {
  Rig rig;
  rig.sched.SetAllocation(0, 10000.0);
  auto t = [&]() -> sim::Task<void> {
    // 512KB -> 4 chunks of 128KB.
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0,
                            512 * 1024);
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_ops, 4u);
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_bytes, 512u * 1024u);
}

TEST(SchedulerTest, ChunkingDisabledKeepsOpWhole) {
  SchedulerOptions opt;
  opt.enable_chunking = false;
  Rig rig(opt);
  rig.sched.SetAllocation(0, 10000.0);
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0,
                            512 * 1024);
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_ops, 1u);
}

TEST(SchedulerTest, EqualAllocationsSplitVopsEqually) {
  // Core paper property (Fig. 7): tenants with equal VOP allocations get
  // equal VOP throughput even with different op types and sizes.
  Rig rig;
  const SimTime end = 3 * kSecond;
  {
    sim::TaskGroup group(rig.loop);
    for (TenantId t = 0; t < 4; ++t) {
      rig.sched.SetAllocation(t, 1000.0);
    }
    // Two readers (different sizes), two writers (different sizes), four
    // workers each (queue depth 16 < device QD 32: demand-limited is fine;
    // use 8 workers each to keep everyone backlogged).
    for (int w = 0; w < 8; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 4 * 1024, end));
      group.Spawn(rig.Worker(1, ssd::IoType::kRead, 64 * 1024, end));
      group.Spawn(rig.Worker(2, ssd::IoType::kWrite, 4 * 1024, end));
      group.Spawn(rig.Worker(3, ssd::IoType::kWrite, 64 * 1024, end));
    }
    rig.loop.Run();
  }
  std::vector<double> vops;
  for (TenantId t = 0; t < 4; ++t) {
    vops.push_back(rig.sched.tracker().Stats(t).vops);
  }
  EXPECT_GT(MinMaxRatio(vops), 0.9) << vops[0] << " " << vops[1] << " "
                                    << vops[2] << " " << vops[3];
}

TEST(SchedulerTest, ProportionalAllocationsSplitVopsProportionally) {
  Rig rig;
  const SimTime end = 3 * kSecond;
  {
    sim::TaskGroup group(rig.loop);
    rig.sched.SetAllocation(0, 3000.0);
    rig.sched.SetAllocation(1, 1000.0);
    for (int w = 0; w < 12; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 8 * 1024, end));
      group.Spawn(rig.Worker(1, ssd::IoType::kRead, 8 * 1024, end));
    }
    rig.loop.Run();
  }
  const double ratio = rig.sched.tracker().Stats(0).vops /
                       rig.sched.tracker().Stats(1).vops;
  EXPECT_NEAR(ratio, 3.0, 0.45);
}

TEST(SchedulerTest, WorkConservationGivesIdleShareToBusyTenant) {
  // Tenant 1 has a big allocation but no demand: tenant 0 should soak up
  // the full device throughput.
  Rig solo;
  const SimTime end = 2 * kSecond;
  {
    sim::TaskGroup group(solo.loop);
    solo.sched.SetAllocation(0, 1000.0);
    solo.sched.SetAllocation(1, 30000.0);  // idle
    for (int w = 0; w < 32; ++w) {
      group.Spawn(solo.Worker(0, ssd::IoType::kRead, 4 * 1024, end));
    }
    solo.loop.Run();
  }
  // ~full read throughput at 4KB for 2s despite a 1k VOP/s allocation.
  const double vops = solo.sched.tracker().Stats(0).vops;
  EXPECT_GT(vops / 2.0, 20000.0);
}

TEST(SchedulerTest, ZeroAllocationTenantServedWhenAlone) {
  Rig rig;
  const SimTime end = 1 * kSecond;
  {
    sim::TaskGroup group(rig.loop);
    // Auto-registered with allocation 0 (best effort).
    for (int w = 0; w < 8; ++w) {
      group.Spawn(rig.Worker(5, ssd::IoType::kRead, 4 * 1024, end));
    }
    rig.loop.Run();
  }
  EXPECT_GT(rig.sched.tracker().Stats(5).total_ops(), 1000u);
}

TEST(SchedulerTest, ZeroAllocationTenantYieldsUnderContention) {
  Rig rig;
  const SimTime end = 2 * kSecond;
  {
    sim::TaskGroup group(rig.loop);
    rig.sched.SetAllocation(0, 1000.0);
    rig.sched.SetAllocation(1, 0.0);
    for (int w = 0; w < 16; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 4 * 1024, end));
      group.Spawn(rig.Worker(1, ssd::IoType::kRead, 4 * 1024, end));
    }
    rig.loop.Run();
  }
  // The provisioned tenant dominates.
  EXPECT_GT(rig.sched.tracker().Stats(0).vops,
            10.0 * rig.sched.tracker().Stats(1).vops);
}

TEST(SchedulerTest, RoundsAdvanceUnderLoad) {
  Rig rig;
  const SimTime end = 500 * kMillisecond;
  {
    sim::TaskGroup group(rig.loop);
    rig.sched.SetAllocation(0, 1000.0);
    for (int w = 0; w < 8; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 4 * 1024, end));
    }
    rig.loop.Run();
  }
  EXPECT_GT(rig.sched.rounds(), 10u);
}

TEST(SchedulerTest, AllocationUpdateShiftsShares) {
  // Start 1:1, then flip to 4:1 mid-run; the post-flip VOP split follows.
  Rig rig;
  {
    sim::TaskGroup group(rig.loop);
    rig.sched.SetAllocation(0, 1000.0);
    rig.sched.SetAllocation(1, 1000.0);
    const SimTime end = 4 * kSecond;
    for (int w = 0; w < 12; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 8 * 1024, end));
      group.Spawn(rig.Worker(1, ssd::IoType::kRead, 8 * 1024, end));
    }
    double t0_mid = 0.0;
    double t1_mid = 0.0;
    rig.loop.ScheduleAt(2 * kSecond, [&] {
      t0_mid = rig.sched.tracker().Stats(0).vops;
      t1_mid = rig.sched.tracker().Stats(1).vops;
      rig.sched.SetAllocation(0, 4000.0);
    });
    rig.loop.Run();
    const double t0_post = rig.sched.tracker().Stats(0).vops - t0_mid;
    const double t1_post = rig.sched.tracker().Stats(1).vops - t1_mid;
    EXPECT_NEAR(t0_post / t1_post, 4.0, 0.8);
  }
}

TEST(SchedulerTest, MixedSizeInsulationMmr) {
  // 8 tenants, 4 read / 4 write, sizes from 1KB to 64KB, equal allocations:
  // VOP MMR should be near the paper's 0.98 (we accept >= 0.85 in this
  // short run).
  Rig rig;
  const SimTime end = 3 * kSecond;
  const uint32_t sizes[] = {1024,       4096,        16384,      65536,
                            2 * 1024,   8 * 1024,    32 * 1024,  64 * 1024};
  {
    sim::TaskGroup group(rig.loop);
    for (TenantId t = 0; t < 8; ++t) {
      rig.sched.SetAllocation(t, 1000.0);
      const ssd::IoType type = t < 4 ? ssd::IoType::kRead : ssd::IoType::kWrite;
      for (int w = 0; w < 4; ++w) {
        group.Spawn(rig.Worker(t, type, sizes[t], end));
      }
    }
    rig.loop.Run();
  }
  std::vector<double> vops;
  for (TenantId t = 0; t < 8; ++t) {
    vops.push_back(rig.sched.tracker().Stats(t).vops);
  }
  EXPECT_GT(MinMaxRatio(vops), 0.85);
}

TEST(SchedulerTest, LifecycleStatsRecordQueueWaitAndService) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  const SimTime end = 500 * kMillisecond;
  {
    sim::TaskGroup group(rig.loop);
    for (int w = 0; w < 4; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 4 * 1024, end));
    }
    rig.loop.Run();
  }
  const TenantLifecycleStats* stats = rig.sched.lifecycle(0);
  ASSERT_NE(stats, nullptr);
  const obs::IoClassStats* gets = stats->of(AppRequest::kGet, InternalOp::kNone);
  ASSERT_NE(gets, nullptr);
  EXPECT_GT(gets->ops, 100u);
  EXPECT_EQ(gets->chunks, gets->ops);  // 4KB ops never split
  EXPECT_EQ(gets->bytes, gets->ops * 4096u);
  // One queue-wait and one service sample per op; device time is nonzero.
  EXPECT_EQ(gets->queue_wait.count(), gets->ops);
  EXPECT_EQ(gets->service.count(), gets->ops);
  EXPECT_GT(gets->service.Percentile(0.5), 0u);
  // Only the (GET, direct) class saw traffic; untouched classes stay
  // unallocated.
  EXPECT_EQ(stats->Aggregate().ops, gets->ops);
  EXPECT_EQ(stats->of(AppRequest::kPut, InternalOp::kNone), nullptr);
  // Unknown tenants have no stats.
  EXPECT_EQ(rig.sched.lifecycle(42), nullptr);
}

TEST(SchedulerTest, ThrottledTenantQueueWaitDominates) {
  // Two identical backlogged workloads; tenant 1's allocation is 50x
  // smaller, so DRR makes its ops sit in the queue: its queue-wait p99 must
  // clearly exceed the generously provisioned tenant's.
  Rig rig;
  rig.sched.SetAllocation(0, 20000.0);
  rig.sched.SetAllocation(1, 400.0);
  const SimTime end = 2 * kSecond;
  {
    sim::TaskGroup group(rig.loop);
    for (int w = 0; w < 8; ++w) {
      group.Spawn(rig.Worker(0, ssd::IoType::kRead, 4 * 1024, end));
      group.Spawn(rig.Worker(1, ssd::IoType::kRead, 4 * 1024, end));
    }
    rig.loop.Run();
  }
  const obs::IoClassStats fast = rig.sched.lifecycle(0)->Aggregate();
  const obs::IoClassStats slow = rig.sched.lifecycle(1)->Aggregate();
  ASSERT_GT(fast.ops, 0u);
  ASSERT_GT(slow.ops, 0u);
  const uint64_t fast_p99 = fast.queue_wait.Percentile(0.99);
  const uint64_t slow_p99 = slow.queue_wait.Percentile(0.99);
  EXPECT_GT(slow_p99, 10 * fast_p99) << slow_p99 << " vs " << fast_p99;
  // Device service time is allocation-independent — same op size, same
  // device — so the gap is attributable to scheduling, not the SSD.
  EXPECT_LT(slow.service.Percentile(0.5), 4 * fast.service.Percentile(0.5));
}

TEST(SchedulerTest, TraceRingCapturesLifecycleEvents) {
  SchedulerOptions opt;
  opt.trace_capacity = 16;
  Rig rig(opt);
  rig.sched.SetAllocation(0, 1000.0);
  auto t = [&]() -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone},
                              uint64_t{4096} * i, 4096);
    }
  };
  sim::Detach(t());
  rig.loop.Run();
  const obs::TraceRing* trace = rig.sched.trace();
  ASSERT_NE(trace, nullptr);
  // 8 ops x (submit + dispatch + complete) = 24 events through a 16-slot
  // ring: all recorded, newest 16 retained.
  EXPECT_EQ(trace->total_recorded(), 24u);
  EXPECT_EQ(trace->size(), 16u);
  const auto events = trace->Events();
  int completes = 0;
  for (const obs::TraceEvent& ev : events) {
    EXPECT_EQ(ev.tenant, 0u);
    EXPECT_EQ(ev.size, 4096u);
    if (ev.type == obs::TraceEventType::kComplete) {
      ++completes;
      EXPECT_EQ(ev.chunks, 1u);
      EXPECT_GT(ev.service_ns, 0u);
    }
  }
  EXPECT_GT(completes, 0);
}

TEST(SchedulerTest, TracingDisabledByDefault) {
  Rig rig;
  EXPECT_EQ(rig.sched.trace(), nullptr);
}

// --- chunking boundary cases ---

// Helper: one awaited read of `size`, returning the tenant's chunk count
// from lifecycle stats.
uint64_t ChunksForRead(Rig& rig, uint32_t size) {
  rig.sched.SetAllocation(0, 100000.0);
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0, size);
  };
  sim::Detach(t());
  rig.loop.Run();
  const TenantLifecycleStats* stats = rig.sched.lifecycle(0);
  EXPECT_NE(stats, nullptr);
  const obs::IoClassStats* cls = stats->of(AppRequest::kGet, InternalOp::kNone);
  EXPECT_NE(cls, nullptr);
  EXPECT_EQ(cls->ops, 1u);
  EXPECT_EQ(cls->bytes, size);
  return cls->chunks;
}

TEST(SchedulerTest, IoOfExactlyChunkBytesIsOneChunk) {
  Rig rig;
  const uint32_t chunk = SchedulerOptions{}.chunk_bytes;
  EXPECT_EQ(ChunksForRead(rig, chunk), 1u);
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_ops, 1u);
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_bytes, chunk);
}

TEST(SchedulerTest, IoOneByteOverChunkBytesSplitsInTwo) {
  Rig rig;
  const uint32_t chunk = SchedulerOptions{}.chunk_bytes;
  EXPECT_EQ(ChunksForRead(rig, chunk + 1), 2u);
  // Physical split: a full chunk plus a 1-byte remainder.
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_ops, 2u);
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_bytes, chunk + 1u);
}

TEST(SchedulerTest, IoOneByteUnderChunkBytesIsOneChunk) {
  Rig rig;
  const uint32_t chunk = SchedulerOptions{}.chunk_bytes;
  EXPECT_EQ(ChunksForRead(rig, chunk - 1), 1u);
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_ops, 1u);
}

TEST(SchedulerTest, ZeroSizeIoCompletesImmediately) {
  Rig rig;
  rig.sched.SetAllocation(0, 1000.0);
  bool done = false;
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone}, 0, 0);
    done = true;
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.sched.inflight(), 0);
  EXPECT_EQ(rig.sched.backlog(), 0u);
  // No physical IO, no VOPs charged; the lifecycle op is recorded with
  // zero chunks and bytes.
  EXPECT_EQ(rig.sched.tracker().Stats(0).read_ops, 0u);
  EXPECT_EQ(rig.sched.tracker().Stats(0).vops, 0.0);
  const TenantLifecycleStats* stats = rig.sched.lifecycle(0);
  ASSERT_NE(stats, nullptr);
  const obs::IoClassStats* cls = stats->of(AppRequest::kGet, InternalOp::kNone);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->ops, 1u);
  EXPECT_EQ(cls->chunks, 0u);
  EXPECT_EQ(cls->bytes, 0u);
}

// Op-pool recycling: many sequential awaited ops circulate through the same
// pooled Op slots; each op's OneShot must complete exactly once (a recycled
// Op double-completing a waiter would either resume a dead coroutine or
// complete a later op early — both show up here as a wrong count or crash).
TEST(SchedulerTest, OpPoolRecyclingNeverDoubleCompletes) {
  Rig rig;
  rig.sched.SetAllocation(0, 100000.0);
  int completions = 0;
  auto t = [&]() -> sim::Task<void> {
    for (int i = 0; i < 200; ++i) {
      // Mix sizes so recycled Ops see different chunk counts (1 and 3).
      const uint32_t size = (i % 2 == 0) ? 4096u : 300u * 1024u;
      co_await rig.sched.Read({0, AppRequest::kGet, InternalOp::kNone},
                              static_cast<uint64_t>(i) * kMiB, size);
      ++completions;
    }
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_EQ(completions, 200);
  EXPECT_EQ(rig.sched.inflight(), 0);
  EXPECT_EQ(rig.sched.backlog(), 0u);
  const obs::IoClassStats* cls =
      rig.sched.lifecycle(0)->of(AppRequest::kGet, InternalOp::kNone);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->ops, 200u);
  EXPECT_EQ(cls->chunks, 100u * 1u + 100u * 3u);
}

TEST(SchedulerTest, ConcurrentTenantsRecyclePooledOpsCleanly) {
  Rig rig;
  const SimTime end = 300 * kMillisecond;
  {
    sim::TaskGroup group(rig.loop);
    for (int t = 0; t < 4; ++t) {
      rig.sched.SetAllocation(t, 1000.0);
      for (int w = 0; w < 4; ++w) {
        group.Spawn(rig.Worker(t, t % 2 == 0 ? ssd::IoType::kRead
                                             : ssd::IoType::kWrite,
                               t % 2 == 0 ? 4 * 1024 : 256 * 1024, end));
      }
    }
    rig.loop.Run();
  }
  EXPECT_EQ(rig.sched.inflight(), 0);
  EXPECT_EQ(rig.sched.backlog(), 0u);
  // Every submitted op completed exactly once: per-class op counts match
  // the all-classes aggregate, and byte totals reconcile.
  for (int t = 0; t < 4; ++t) {
    const TenantLifecycleStats* stats = rig.sched.lifecycle(t);
    ASSERT_NE(stats, nullptr);
    const obs::IoClassStats agg = stats->Aggregate();
    EXPECT_GT(agg.ops, 0u);
    EXPECT_GE(agg.chunks, agg.ops);
    const auto& s = rig.sched.tracker().Stats(t);
    EXPECT_EQ(agg.bytes, s.read_bytes + s.write_bytes);
  }
}

// --- batched IOPs with multi-tag manifests (WriteShared) ---

TEST(SchedulerTest, SharedWriteSplitsCostByBytes) {
  Rig rig;
  rig.sched.SetAllocation(0, 10000.0);
  rig.sched.SetAllocation(1, 10000.0);
  rig.sched.SetAllocation(9, 10000.0);
  constexpr uint32_t kSize = 64 * 1024;  // single chunk
  auto t = [&]() -> sim::Task<void> {
    // Reference: the same IOP as a plain single-tag write.
    co_await rig.sched.Write({9, AppRequest::kPut, InternalOp::kNone}, 0,
                             kSize);
    // Batched: tenants 0 and 1 ride one IOP with a 1:3 byte split.
    std::vector<IoShare> manifest;
    manifest.push_back({{0, AppRequest::kPut, InternalOp::kNone}, kSize / 4});
    manifest.push_back({{1, AppRequest::kPut, InternalOp::kNone},
                        kSize - kSize / 4});
    co_await rig.sched.WriteShared(kSize, kSize, std::move(manifest));
  };
  sim::Detach(t());
  rig.loop.Run();
  const double reference = rig.sched.tracker().Stats(9).vops;
  const double v0 = rig.sched.tracker().Stats(0).vops;
  const double v1 = rig.sched.tracker().Stats(1).vops;
  ASSERT_GT(reference, 0.0);
  // Exact-sum invariant: the split shares reconstruct the IOP's cost
  // bit-for-bit — not approximately.
  EXPECT_EQ(v0 + v1, reference);
  // Byte-proportional: tenant 1 carried 3x the bytes.
  EXPECT_NEAR(v1 / v0, 3.0, 1e-9);
  EXPECT_EQ(rig.sched.tracker().Stats(0).write_bytes, uint64_t{kSize} / 4);
  EXPECT_EQ(rig.sched.tracker().Stats(1).write_bytes,
            uint64_t{kSize} - kSize / 4);
}

TEST(SchedulerTest, SharedWriteSingleShareEquivalentToPlainWrite) {
  Rig rig;
  rig.sched.SetAllocation(0, 10000.0);
  rig.sched.SetAllocation(9, 10000.0);
  constexpr uint32_t kSize = 16 * 1024;
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Write({9, AppRequest::kPut, InternalOp::kNone}, 0,
                             kSize);
    std::vector<IoShare> manifest;
    manifest.push_back({{0, AppRequest::kPut, InternalOp::kNone}, kSize});
    co_await rig.sched.WriteShared(kSize, kSize, std::move(manifest));
  };
  sim::Detach(t());
  rig.loop.Run();
  EXPECT_EQ(rig.sched.tracker().Stats(0).vops,
            rig.sched.tracker().Stats(9).vops);
  EXPECT_EQ(rig.sched.tracker().Stats(0).write_ops, 1u);
  // A single-share manifest takes the plain path: no shared-IO slices.
  EXPECT_EQ(rig.sched.tracker().shared_io_shares(), 0u);
}

TEST(SchedulerTest, SharedWriteChunkedManifestSumsExact) {
  // A 512KB batched write splits into 4 device chunks of 128KB; manifest
  // ranges deliberately straddle chunk boundaries. The per-chunk slice
  // costs must still reconstruct the full op cost exactly, and each
  // contributor's bytes must match its manifest share.
  Rig rig;
  for (TenantId t : {0u, 1u, 2u, 9u}) {
    rig.sched.SetAllocation(t, 100000.0);
  }
  constexpr uint32_t kSize = 512 * 1024;
  const uint32_t kShare0 = 100 * 1024;  // inside chunk 0
  const uint32_t kShare1 = 200 * 1024;  // spans chunks 0-2
  const uint32_t kShare2 = kSize - kShare0 - kShare1;  // spans chunks 2-3
  auto t = [&]() -> sim::Task<void> {
    co_await rig.sched.Write({9, AppRequest::kPut, InternalOp::kNone}, 0,
                             kSize);
    std::vector<IoShare> manifest;
    manifest.push_back({{0, AppRequest::kPut, InternalOp::kNone}, kShare0});
    manifest.push_back({{1, AppRequest::kPut, InternalOp::kFlush}, kShare1});
    manifest.push_back({{2, AppRequest::kPut, InternalOp::kNone}, kShare2});
    co_await rig.sched.WriteShared(0, kSize, std::move(manifest));
  };
  sim::Detach(t());
  rig.loop.Run();
  const auto& tr = rig.sched.tracker();
  const double reference = tr.Stats(9).vops;
  ASSERT_GT(reference, 0.0);
  EXPECT_EQ(tr.Stats(0).vops + tr.Stats(1).vops + tr.Stats(2).vops, reference);
  EXPECT_EQ(tr.Stats(0).write_bytes, uint64_t{kShare0});
  EXPECT_EQ(tr.Stats(1).write_bytes, uint64_t{kShare1});
  EXPECT_EQ(tr.Stats(2).write_bytes, uint64_t{kShare2});
  EXPECT_EQ(tr.shared_io_bytes(), uint64_t{kSize});
}

TEST(SchedulerTest, SharedWriteLandsCostOnManifestTags) {
  // Each share's slice must be recorded under its own (tenant, app,
  // internal-op) class — the leader's tag schedules the op but does not
  // absorb the followers' costs.
  Rig rig;
  rig.sched.SetAllocation(3, 10000.0);
  rig.sched.SetAllocation(4, 10000.0);
  constexpr uint32_t kSize = 8 * 1024;
  auto t = [&]() -> sim::Task<void> {
    std::vector<IoShare> manifest;
    manifest.push_back({{3, AppRequest::kPut, InternalOp::kNone}, kSize / 2});
    manifest.push_back({{4, AppRequest::kPut, InternalOp::kFlush}, kSize / 2});
    co_await rig.sched.WriteShared(0, kSize, std::move(manifest));
  };
  sim::Detach(t());
  rig.loop.Run();
  const auto& tr = rig.sched.tracker();
  EXPECT_GT(tr.VopsBy(3, AppRequest::kPut, InternalOp::kNone,
                      ssd::IoType::kWrite),
            0.0);
  EXPECT_GT(tr.VopsBy(4, AppRequest::kPut, InternalOp::kFlush,
                      ssd::IoType::kWrite),
            0.0);
  // Nothing leaked onto classes no share named.
  EXPECT_EQ(tr.VopsBy(3, AppRequest::kPut, InternalOp::kFlush,
                      ssd::IoType::kWrite),
            0.0);
  EXPECT_EQ(tr.VopsBy(4, AppRequest::kPut, InternalOp::kNone,
                      ssd::IoType::kWrite),
            0.0);
  EXPECT_EQ(tr.shared_io_shares(), 2u);
  // Lifecycle stats (device IOP accounting) bill the batch to the leader:
  // one op under tenant 3, none under tenant 4.
  const TenantLifecycleStats* leader = rig.sched.lifecycle(3);
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->Aggregate().ops, 1u);
  const TenantLifecycleStats* follower = rig.sched.lifecycle(4);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(follower->Aggregate().ops, 0u);
}

}  // namespace
}  // namespace libra::iosched
