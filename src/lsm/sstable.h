// Immutable sorted string tables.
//
// Layout (paper §3.1 mechanics: block reads + one index block per lookup):
//   [data block 0][data block 1]...[index block][filter block][footer]
//   data block:   concatenated records, ~4KB target size
//   index block:  per data block {last_key, offset, size}
//   filter block: bloom filter over the table's user keys (absent — zero
//                 length — when bloom_bits_per_key is 0, which keeps the
//                 file byte-identical to the pre-filter format)
//   footer (16B): index offset u64, index size u64 (the filter region is
//                 whatever lies between index end and footer)
//
// A point lookup probes the bloom filter first: a negative answer proves
// the key is absent and skips both the index and data-block device reads —
// the common case for GETs against leveled trees, and the main lever on
// the per-file GET amplification the paper measures (Figs. 2/12). On a
// maybe (or with filters off, the 2014 LevelDB default this engine
// started from) the lookup loads the index block (>= one 4KB read),
// binary-searches it, and reads exactly one data block.
//
// Index, filter, and data blocks can be served from a shared BlockCache;
// hits cost zero device IO and misses re-read (and re-charge) from the
// device. Without a cache, the index and filter stay resident in the
// reader after first use; data blocks always hit the device — O_DIRECT
// leaves no page cache.
//
// The builder emits the table through a sequential, chunked append stream
// (the paper's "asynchronous, io-efficient" FLUSH/COMPACT writes).

#ifndef LIBRA_SRC_LSM_SSTABLE_H_
#define LIBRA_SRC_LSM_SSTABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/io_tag.h"
#include "src/lsm/block_cache.h"
#include "src/lsm/format.h"
#include "src/sim/task.h"

namespace libra::lsm {

struct SstableOptions {
  uint32_t block_bytes = 4096;          // data block target
  uint32_t write_chunk_bytes = 262144;  // sequential append granularity
  // Bloom filter density; 0 writes no filter block (tables byte-identical
  // to the pre-filter format).
  uint32_t bloom_bits_per_key = 0;
};

// Read-path event counters, shared across a DB's readers (the DB owns one
// and points every reader at it, like WalCounters for rotated WALs).
struct TableReadCounters {
  uint64_t bloom_probes = 0;           // GETs that consulted a filter
  uint64_t bloom_negatives = 0;        // ... answered "definitely absent"
  uint64_t bloom_false_positives = 0;  // ... said maybe, key wasn't there
  uint64_t index_block_reads = 0;      // index blocks read from the device
  uint64_t filter_block_reads = 0;     // filter blocks read from the device
  uint64_t data_block_reads = 0;       // GET data blocks read from the device
  uint64_t data_cache_hits = 0;        // GET data blocks served by the cache
};

// Builds a table in memory block by block; Finish() streams it to `file`.
class SstableBuilder {
 public:
  SstableBuilder(fs::SimFs& fs, fs::FileId file, SstableOptions options = {});

  // Keys must arrive in internal order (user key asc, seq desc).
  void Add(std::string_view key, SequenceNumber seq, ValueType type,
           std::string_view value);

  // Writes all pending data to the file with `tag` IO. No Adds afterwards.
  sim::Task<Status> Finish(const iosched::IoTag& tag);

  uint64_t estimated_bytes() const { return buffer_.size() + block_.size(); }
  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  void FlushBlock();

  fs::SimFs& fs_;
  fs::FileId file_;
  SstableOptions options_;

  std::string buffer_;  // completed data blocks
  std::string block_;   // current data block
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;
  };
  std::vector<IndexEntry> index_;
  // Distinct user keys for the filter block (internal order keeps versions
  // of one key adjacent, so adjacent-dup skipping suffices). Collected only
  // when bloom_bits_per_key > 0.
  std::vector<std::string> filter_keys_;
  std::string last_key_in_block_;
  std::string smallest_;
  std::string largest_;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

// Reads a finished table. The footer is loaded from disk on first need and
// cached in the reader (tables are immutable). The parsed index and the
// filter block live in the shared BlockCache when one is wired — bounded
// by its budget, re-read and re-charged after eviction — or stay resident
// in the reader forever without one (the default). Data blocks are served
// from the cache only when it caches data (`block_cache_bytes` mode, not
// the deprecated index-only `table_cache_bytes` alias).
class SstableReader {
 public:
  // `cache`, if non-null, holds this reader's blocks under (`tenant`,
  // `table`) — the owning tenant and table file number; table numbers
  // alone collide across tenants' partitions on a node-shared cache.
  // `counters`, if non-null, receives read-path events.
  SstableReader(fs::SimFs& fs, fs::FileId file, SstableOptions options = {},
                BlockCache* cache = nullptr, uint64_t table = 0,
                iosched::TenantId tenant = 0,
                TableReadCounters* counters = nullptr);

  struct GetResult {
    bool found = false;    // an entry for the key exists in this table
    bool deleted = false;  // ... and it is a tombstone
    std::string value;
    Status status;         // IO / parse errors
  };

  // Point lookup: newest entry for `key` visible at `snapshot`. Probes the
  // bloom filter (when the table has one) before touching the index.
  sim::Task<GetResult> Get(const iosched::IoTag& tag, std::string_view key,
                           SequenceNumber snapshot);

  // Streaming in-order cursor over the table's records with user key >=
  // the seek key, for range scans. Data blocks are loaded on demand as the
  // cursor advances (each charged to the cursor's tag), so a
  // limit-truncated scan pays only for the blocks it actually touched —
  // unlike ScanAll's whole-table read. The cursor pins the parsed index
  // for its lifetime (a cache eviction mid-scan cannot invalidate it).
  // Scans bypass the bloom filter — a point filter cannot answer a range
  // predicate — and read data blocks straight from the device, so a long
  // scan cannot wash a tenant's hot blocks out of the shared cache.
  class RangeCursor {
   public:
    bool Valid() const { return valid_; }
    // The current record; views point into the cursor's resident block and
    // are invalidated by Next(). Requires Valid().
    const Record& record() const { return record_; }
    // Advances to the next record in internal-key order, reading the next
    // data block when the current one is exhausted. Clears Valid() past
    // the table's last record.
    sim::Task<Status> Next();

   private:
    friend class SstableReader;
    RangeCursor(fs::SimFs& fs, fs::FileId file, iosched::IoTag tag,
                TableIndexRef index)
        : fs_(fs), file_(file), tag_(tag), index_(std::move(index)) {}

    // Decodes forward until a record with user key >= `start` surfaces
    // (every record when `bounded` is false), loading blocks as needed.
    sim::Task<Status> SkipTo(std::string_view start, bool bounded);

    fs::SimFs& fs_;
    fs::FileId file_;
    iosched::IoTag tag_;
    TableIndexRef index_;
    size_t next_block_ = 0;  // index of the next data block to load
    std::string block_;      // resident data block backing record_'s views
    size_t offset_ = 0;      // decode position within block_
    Record record_;
    bool valid_ = false;
  };

  // Opens a cursor positioned at the first record whose user key is >=
  // `start` (immediately invalid when the table holds none). The index
  // load and all data-block reads are charged to `tag`.
  sim::Task<StatusOr<std::unique_ptr<RangeCursor>>> Seek(
      const iosched::IoTag& tag, std::string_view start);

  // Sequential scan for compaction: reads the whole table in write_chunk
  // sized IOs and yields records in order via `fn`.
  sim::Task<Status> ScanAll(
      const iosched::IoTag& tag,
      const std::function<void(const Record&)>& fn);

 private:
  // Loads and validates the footer (one charged 16B read, cached in the
  // reader afterwards), locating the index and filter regions.
  sim::Task<Status> LoadFooter(const iosched::IoTag& tag);

  // Resolves the parsed index: from the shared cache (or the reader-local
  // resident copy when uncached), else loads footer + index block from the
  // device, charged to `tag`. The returned ref pins the index for the
  // caller even if the cache evicts it mid-lookup.
  sim::Task<StatusOr<TableIndexRef>> LoadIndex(const iosched::IoTag& tag);

  // Resolves the filter block the same way. Returns a null ref when the
  // table has no filter; the ref pins the bytes past cache eviction.
  sim::Task<StatusOr<CachedBlockRef>> LoadFilter(const iosched::IoTag& tag);

  fs::SimFs& fs_;
  fs::FileId file_;
  SstableOptions options_;
  BlockCache* cache_;  // nullptr: index/filter resident in the reader
  uint64_t table_;
  iosched::TenantId tenant_;
  TableReadCounters* counters_;  // nullptr: uncounted (bare-reader tests)
  // Footer, cached after the first (charged) load; a post-eviction reload
  // re-reads only the evicted block.
  bool footer_cached_ = false;
  uint64_t index_offset_ = 0;
  uint64_t index_size_ = 0;
  uint64_t filter_size_ = 0;  // 0 after footer load = table has no filter
  TableIndexRef resident_index_;   // only used when cache_ == nullptr
  CachedBlockRef resident_filter_;  // likewise
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_SSTABLE_H_
