// Plain-text table / CSV emission for the figure-reproduction benches. Every
// bench prints aligned columns by default and CSV with --csv, so the paper's
// rows/series can be regenerated and diffed mechanically.

#ifndef LIBRA_SRC_METRICS_TABLE_H_
#define LIBRA_SRC_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace libra::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; sizes shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  // Convenience for numeric rows; values formatted with `precision` digits.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 2);

  // Aligned fixed-width text rendering.
  std::string ToText() const;

  // RFC-4180 CSV rendering (fields with , " CR LF are quoted, embedded
  // quotes doubled).
  std::string ToCsv() const;

  // JSON rendering: an array of row objects keyed by the header columns
  // (all values as strings). Used by the benches' --stats-json output.
  std::string ToJson() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper for bench output).
std::string FormatDouble(double v, int precision = 2);

}  // namespace libra::metrics

#endif  // LIBRA_SRC_METRICS_TABLE_H_
