// Simulated filesystem backing the persistence engine.
//
// Files hold real bytes (the LSM engine's correctness is tested end to
// end), while every read and append is dispatched as a tagged IO task
// through the Libra scheduler and charged against the issuing tenant —
// the O_DIRECT + O_SYNC discipline of the paper's prototype (§5): no page
// cache, writes are durable when the call returns.
//
// Disk space is managed in fixed-size extents mapped onto the SSD's
// logical address space; deleting a file TRIMs its extents so the FTL sees
// the space as dead (as a real filesystem's discard would).

#ifndef LIBRA_SRC_FS_SIM_FS_H_
#define LIBRA_SRC_FS_SIM_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/iosched/io_tag.h"
#include "src/iosched/scheduler.h"
#include "src/sim/task.h"
#include "src/ssd/device.h"

namespace libra::fs {

using FileId = uint64_t;
inline constexpr FileId kInvalidFile = 0;

struct FsStats {
  uint64_t files = 0;
  uint64_t bytes_used = 0;
  uint64_t extents_free = 0;
};

class SimFs {
 public:
  // `extent_bytes` is the allocation unit; capacity comes from the device.
  SimFs(iosched::IoScheduler& scheduler, ssd::SsdDevice& device,
        uint32_t extent_bytes = 1024 * 1024);

  SimFs(const SimFs&) = delete;
  SimFs& operator=(const SimFs&) = delete;

  // --- namespace ---

  StatusOr<FileId> Create(const std::string& name);
  StatusOr<FileId> Open(const std::string& name) const;
  bool Exists(const std::string& name) const;
  Status Delete(const std::string& name);
  Status Rename(const std::string& from, const std::string& to);
  std::vector<std::string> List() const;

  // --- IO (suspends on the scheduler) ---

  // Appends `data` to the end of the file; returns when durable.
  sim::Task<Status> Append(FileId file, const iosched::IoTag& tag,
                           std::string_view data);

  // Appends a batched payload contributed by multiple tags (WAL group
  // commit): one durable append whose device IOPs carry `manifest` — a
  // byte-ordered cost manifest covering `data` exactly — so the scheduler
  // splits the VOP cost back onto each contributor. Extent-crossing
  // payloads split into per-segment device writes, each carrying the
  // matching slice of the manifest.
  sim::Task<Status> AppendShared(FileId file,
                                 std::vector<iosched::IoShare> manifest,
                                 std::string_view data);

  // Reads [offset, offset+length) into *out (resized). Reading past EOF is
  // an error.
  sim::Task<Status> ReadAt(FileId file, const iosched::IoTag& tag,
                           uint64_t offset, uint64_t length,
                           std::string* out);

  uint64_t SizeOf(FileId file) const;
  FsStats stats() const;

  iosched::IoScheduler& scheduler() { return scheduler_; }

  // Host-side peek at file contents WITHOUT device IO or scheduling. Only
  // for one-shot maintenance paths that happen before a node serves
  // traffic (WAL recovery at open); all serving-path reads must use
  // ReadAt so their IO is charged.
  Status PeekContents(FileId file, std::string* out) const;

  // --- fault-injection hooks (host-side, no device IO) ---
  //
  // Crash modeling for recovery tests: a torn tail is a truncation at an
  // arbitrary byte, and media corruption is an in-place bit flip. Both act
  // on the stored bytes only — extent accounting keeps the original
  // allocation, as a real crash would leave blocks allocated past the
  // last valid write.

  // Truncates the file's contents to `size` bytes (no-op if already
  // smaller). Returns kNotFound for an unknown name.
  Status Truncate(const std::string& name, uint64_t size);

  // XORs the byte at `offset` with `mask`. Returns kOutOfRange past EOF.
  Status CorruptByte(const std::string& name, uint64_t offset, uint8_t mask);

 private:
  struct File {
    std::string name;
    std::string data;               // real contents
    std::vector<uint32_t> extents;  // extent indices, in file order
  };

  // Logical byte address of `offset` within the file, for device timing.
  uint64_t DiskAddress(const File& f, uint64_t offset) const;

  // Grows the extent list to cover `size` bytes. Returns false when full.
  bool EnsureCapacity(File& f, uint64_t size);

  File* Lookup(FileId id);
  const File* Lookup(FileId id) const;

  iosched::IoScheduler& scheduler_;
  ssd::SsdDevice& device_;
  uint32_t extent_bytes_;
  uint64_t num_extents_;

  std::map<std::string, FileId> names_;
  std::map<FileId, std::unique_ptr<File>> files_;
  std::vector<uint32_t> free_extents_;
  FileId next_id_ = 1;
};

}  // namespace libra::fs

#endif  // LIBRA_SRC_FS_SIM_FS_H_
