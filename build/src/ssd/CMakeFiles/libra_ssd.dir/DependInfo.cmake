
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/calibration.cc" "src/ssd/CMakeFiles/libra_ssd.dir/calibration.cc.o" "gcc" "src/ssd/CMakeFiles/libra_ssd.dir/calibration.cc.o.d"
  "/root/repo/src/ssd/device.cc" "src/ssd/CMakeFiles/libra_ssd.dir/device.cc.o" "gcc" "src/ssd/CMakeFiles/libra_ssd.dir/device.cc.o.d"
  "/root/repo/src/ssd/ftl.cc" "src/ssd/CMakeFiles/libra_ssd.dir/ftl.cc.o" "gcc" "src/ssd/CMakeFiles/libra_ssd.dir/ftl.cc.o.d"
  "/root/repo/src/ssd/profile.cc" "src/ssd/CMakeFiles/libra_ssd.dir/profile.cc.o" "gcc" "src/ssd/CMakeFiles/libra_ssd.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/libra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/libra_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
