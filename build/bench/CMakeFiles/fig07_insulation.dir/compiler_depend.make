# Empty compiler generated dependencies file for fig07_insulation.
# This may be replaced when dependencies are built.
