// Figure 8: virtual IOP cost curves under the five cost models — Libra's
// exact and fitted models against the constant cost-per-byte (DynamoDB
// pricing), naive linear (mClock/FlashFQ family), and fixed per-IOP
// alternatives. The constant model over-charges everything above 1KB; the
// linear model undercuts small/medium ops; the fixed model's cost-per-byte
// collapses with size.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace libra::bench;
  using libra::ssd::IoType;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const auto profile = libra::ssd::Intel320Profile();
  const auto& table = TableFor(profile);

  const char* kModels[] = {"exact", "fitted", "constant", "linear", "fixed"};
  for (IoType type : {IoType::kRead, IoType::kWrite}) {
    Section(args, std::string("Figure 8: ") + libra::ssd::IoTypeName(type).data() +
                      " IO cost models, VOPs per op (" + profile.name + ")");
    libra::metrics::Table out(
        {"size_kb", "exact", "fitted", "constant", "linear", "fixed"});
    for (uint32_t kb : libra::ssd::kSweepSizesKb) {
      std::vector<double> row;
      for (const char* name : kModels) {
        auto model = libra::iosched::MakeCostModel(name, table);
        row.push_back(model->Cost(type, kb * 1024));
      }
      out.AddNumericRow(std::to_string(kb), row, 3);
    }
    Emit(args, out);
  }
  return 0;
}
