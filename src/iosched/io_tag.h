// IO tagging vocabulary (paper §2.2, §4.1).
//
// The persistence engine tags every low-level IO task with its resource
// principal (tenant), the originating application-level request type, and —
// for secondary IO — the internal engine operation performing it. These
// tags are what let Libra attribute FLUSH/COMPACT amplification back to the
// PUTs that caused it and build per-tenant app-request resource profiles.

#ifndef LIBRA_SRC_IOSCHED_IO_TAG_H_
#define LIBRA_SRC_IOSCHED_IO_TAG_H_

#include <cstdint>
#include <string_view>

#include "src/common/trace_context.h"

namespace libra::iosched {

using TenantId = uint32_t;
inline constexpr TenantId kInvalidTenant = UINT32_MAX;

enum class AppRequest : uint8_t {
  kNone = 0,  // unattributed (e.g., system maintenance)
  kGet = 1,
  kPut = 2,
  kScan = 3,  // bounded range scan (merge-read across the LSM)
};
inline constexpr int kNumAppRequests = 4;

// First attributable application class: loops over request classes skip
// kNone (slot 0), which never carries reservations or profiles.
inline constexpr int kFirstAppRequest = 1;

enum class InternalOp : uint8_t {
  kNone = 0,  // direct IO of the app request itself
  kFlush = 1,
  kCompact = 2,
  kReplicate = 3,  // re-replication / recovery copy stream
};
inline constexpr int kNumInternalOps = 4;

// Exhaustive by design: adding an AppRequest value without updating every
// switch over the enum is a compile error (-Wswitch), not a silent "?".
inline std::string_view AppRequestName(AppRequest a) {
  switch (a) {
    case AppRequest::kNone:
      return "none";
    case AppRequest::kGet:
      return "GET";
    case AppRequest::kPut:
      return "PUT";
    case AppRequest::kScan:
      return "SCAN";
  }
  return "?";  // unreachable for in-range values
}

inline std::string_view InternalOpName(InternalOp i) {
  switch (i) {
    case InternalOp::kNone:
      return "direct";
    case InternalOp::kFlush:
      return "FLUSH";
    case InternalOp::kCompact:
      return "COMPACT";
    case InternalOp::kReplicate:
      return "REPL";
  }
  return "?";  // unreachable for in-range values
}

struct IoTag {
  TenantId tenant = kInvalidTenant;
  AppRequest app = AppRequest::kNone;
  InternalOp internal = InternalOp::kNone;
  // Causal trace context of the request (or background op) issuing the IO.
  // Riding the tag means contexts flow through the WAL, group-commit
  // manifests, SSTable builders/readers and the scheduler without any
  // signature changes in those layers; invalid (all-zero) when untraced.
  TraceContext ctx;
};

// One contributor's slice of a batched (shared) IOP: `bytes` of the op's
// payload belong to `tag`. A manifest — an ordered list of shares covering
// the op byte range exactly — lets the scheduler split the merged IOP's VOP
// cost back onto the (tenant, app-request, internal-op) tags that rode it,
// proportionally to bytes, with an exact-sum invariant (the split charges
// reconstruct the IOP's total cost bit-for-bit).
struct IoShare {
  IoTag tag;
  uint32_t bytes = 0;
};

// Normalized request units (paper reservations are in size-normalized 1KB
// requests): a 4KB GET counts as 4 normalized GETs; sub-1KB rounds up to 1.
inline double NormalizedRequests(uint64_t size_bytes) {
  const double units = static_cast<double>(size_bytes) / 1024.0;
  return units < 1.0 ? 1.0 : units;
}

}  // namespace libra::iosched

#endif  // LIBRA_SRC_IOSCHED_IO_TAG_H_
