// Write-through LRU object cache (the "Key-Value Protocol/Cache" layer of
// Fig. 1). GET hits are served from memory without touching the IO path;
// the paper's disk-bound experiments run with the cache disabled, and its
// presence is why realistic IO-bound workloads skew PUT-heavy (§6.3).

#ifndef LIBRA_SRC_KV_CACHE_H_
#define LIBRA_SRC_KV_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace libra::kv {

class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Returns the cached value and refreshes recency.
  std::optional<std::string> Get(const std::string& key);

  // Inserts/overwrites; evicts LRU entries to fit. Objects larger than the
  // whole cache are not admitted.
  void Put(const std::string& key, std::string value);

  void Erase(const std::string& key);

  size_t size_bytes() const { return used_; }
  size_t entries() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  void EvictToFit();

  size_t capacity_;
  size_t used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
};

}  // namespace libra::kv

#endif  // LIBRA_SRC_KV_CACHE_H_
