// Figure 5: CDF of IO throughput across the Fig. 4 experiments, normalized
// by the minimum achieved throughput. Solid paper lines = uniform IOP
// sizes per ratio; dashed/dotted = log-normal size variance. Higher
// variance pushes throughput toward the minimum — the justification for
// the conservative floor capacity model (§4.2).

#include <cstdio>

#include "bench/bench_common.h"

namespace libra::bench {
namespace {

struct Series {
  std::string name;
  double read_fraction;
  double sigma;
};

}  // namespace
}  // namespace libra::bench

int main(int argc, char** argv) {
  using namespace libra::bench;
  using libra::SampleSet;
  const BenchArgs args = ParseCommonFlags(argc, argv);
  const auto profile = libra::ssd::Intel320Profile();
  const auto sizes = SweepSizesKb(args.full);

  const Series series[] = {
      {"75:25", 0.75, 0.0},          {"75:25 s4K", 0.75, 4096.0},
      {"75:25 s32K", 0.75, 32768.0}, {"75:25 s256K", 0.75, 262144.0},
      {"50:50", 0.50, 0.0},          {"25:75", 0.25, 0.0},
  };

  // Collect every cell's throughput per series. Cells are independent, so
  // compute them across --jobs workers and fold serially in sweep order.
  const size_t per_series = sizes.size() * sizes.size();
  TableFor(profile);  // warm the calibration cache before the pool starts
  SweepRunner runner(args.jobs);
  const std::vector<double> cell_vops =
      runner.Map<double>(std::size(series) * per_series, [&](size_t i) {
        const Series& ser = series[i / per_series];
        const size_t c = i % per_series;
        RawCellSpec cell;
        cell.mode = CellMode::kMixed;
        cell.read_fraction = ser.read_fraction;
        cell.size_a_bytes =
            static_cast<double>(sizes[c / sizes.size()]) * 1024.0;
        cell.size_b_bytes =
            static_cast<double>(sizes[c % sizes.size()]) * 1024.0;
        cell.sigma_bytes = ser.sigma;
        return RunRawCell(profile, cell).total_vops_per_sec;
      });

  std::vector<SampleSet> samples(std::size(series));
  double global_min = 1e30;
  for (size_t s = 0; s < std::size(series); ++s) {
    for (size_t c = 0; c < per_series; ++c) {
      const double vops = cell_vops[s * per_series + c];
      samples[s].Add(vops);
      global_min = std::min(global_min, vops);
    }
  }

  Section(args, "Figure 5: normalized IO throughput distribution per series");
  libra::metrics::Table out({"series", "min_kvops", "p10", "p25", "p50", "p75",
                             "p90", "max", "norm_p50", "norm_p90"});
  for (size_t s = 0; s < std::size(series); ++s) {
    const SampleSet& set = samples[s];
    out.AddNumericRow(
        series[s].name,
        {set.Min() / 1000.0, set.Percentile(0.10) / 1000.0,
         set.Percentile(0.25) / 1000.0, set.Median() / 1000.0,
         set.Percentile(0.75) / 1000.0, set.Percentile(0.90) / 1000.0,
         set.Max() / 1000.0, set.Median() / global_min,
         set.Percentile(0.90) / global_min},
        2);
  }
  Emit(args, out);
  std::printf("normalization floor (min across all cells): %.1f kVOP/s\n",
              global_min / 1000.0);
  std::printf(
      "paper trend: higher size variance -> throughput closer to the "
      "minimum (norm ratios -> 1)\n");
  return 0;
}
