// Validates the NodeStatsToJson schema end-to-end: drive a two-tenant node
// under load, snapshot it, parse the JSON back, and check every section the
// --stats-json consumers rely on — per-tenant request percentiles, queue-wait
// vs device-service histograms, LSM flush/compaction totals, and the
// provisioning audit log with its profile components.

#include "src/kv/node_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/kv/storage_node.h"
#include "src/obs/json.h"
#include "src/sim/sync.h"
#include "src/workload/workload.h"

namespace libra::kv {
namespace {

using obs::JsonParse;
using obs::JsonValue;

ssd::CalibrationTable SnapshotTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

// The histogram sub-object HistogramToJson emits. `positive` additionally
// requires nonzero percentiles (true for service/request latency; queue wait
// can be legitimately zero when ops dispatch immediately).
void ExpectHistogramSchema(const JsonValue* h, bool positive) {
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->is_object());
  ASSERT_NE(h->Find("count"), nullptr);
  EXPECT_GT(h->Find("count")->number, 0.0);
  for (const char* p : {"p50", "p90", "p99", "p999"}) {
    const JsonValue* v = h->Find(p);
    ASSERT_NE(v, nullptr) << p;
    EXPECT_TRUE(std::isfinite(v->number)) << p;
    if (positive) {
      EXPECT_GT(v->number, 0.0) << p;
    } else {
      EXPECT_GE(v->number, 0.0) << p;
    }
  }
  EXPECT_LE(h->Find("p50")->number, h->Find("p99")->number);
  EXPECT_LE(h->Find("min_ns")->number, h->Find("max_ns")->number);
}

TEST(NodeStatsJsonTest, EmptyNodeSnapshotParses) {
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = SnapshotTable();
  opt.prefill_bytes = 0;
  StorageNode node(loop, opt);

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(NodeStatsToJson(node.Snapshot()), &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.Find("tenants")->is_array());
  EXPECT_TRUE(v.Find("tenants")->array.empty());
  EXPECT_TRUE(v.Find("audit")->array.empty());
  EXPECT_GT(v.Find("capacity")->Find("floor_vops")->number, 0.0);

  // Replication/recovery sections are always present; a standalone node
  // reports the unreplicated, never-crashed defaults.
  const JsonValue* repl = v.Find("replication");
  ASSERT_NE(repl, nullptr);
  EXPECT_FALSE(repl->Find("enabled")->bool_value);
  EXPECT_TRUE(repl->Find("alive")->bool_value);
  EXPECT_FALSE(repl->Find("syncing")->bool_value);
  for (const char* k : {"leader_slots", "follower_slots", "fanout_puts",
                        "fanout_bytes", "failover_gets", "catchup_keys",
                        "catchup_bytes", "catchup_lag_slots"}) {
    ASSERT_NE(repl->Find(k), nullptr) << k;
    EXPECT_EQ(repl->Find(k)->number, 0.0) << k;
  }
  const JsonValue* rec = v.Find("recovery");
  ASSERT_NE(rec, nullptr);
  for (const char* k : {"crashes", "restarts", "wal_files_replayed",
                        "replay_records", "replay_bytes",
                        "rereplication_vops"}) {
    ASSERT_NE(rec->Find(k), nullptr) << k;
    EXPECT_EQ(rec->Find(k)->number, 0.0) << k;
  }
}

TEST(NodeStatsJsonTest, RecoverySectionCountsCrashRestartAndReplay) {
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = SnapshotTable();
  opt.prefill_bytes = 0;
  StorageNode node(loop, opt);
  ASSERT_TRUE(node.AddTenant(1, {100.0, 100.0}).ok());

  auto fill = [&]() -> sim::Task<void> {
    for (int i = 0; i < 12; ++i) {
      co_await node.Put(1, "key" + std::to_string(i), std::string(64, 'v'));
    }
  };
  sim::Detach(fill());
  loop.Run();
  node.Crash();
  auto restart = [&]() -> sim::Task<void> {
    const Status s = co_await node.Restart();
    EXPECT_TRUE(s.ok()) << s.ToString();
  };
  sim::Detach(restart());
  loop.Run();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(NodeStatsToJson(node.Snapshot()), &v, &err)) << err;
  const JsonValue* rec = v.Find("recovery");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->Find("crashes")->number, 1.0);
  EXPECT_EQ(rec->Find("restarts")->number, 1.0);
  EXPECT_GE(rec->Find("wal_files_replayed")->number, 1.0);
  EXPECT_EQ(rec->Find("replay_records")->number, 12.0);
  EXPECT_GT(rec->Find("replay_bytes")->number, 0.0);
}

TEST(NodeStatsJsonTest, LoadedNodeSnapshotMatchesSchema) {
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = SnapshotTable();
  opt.prefill_bytes = 0;
  // Small memtables so the run includes flushes (and usually compactions).
  opt.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.lsm_options.max_bytes_level1 = 1 * kMiB;
  StorageNode node(loop, opt);

  ASSERT_TRUE(node.AddTenant(1, {1500.0, 500.0, 300.0}).ok());
  ASSERT_TRUE(node.AddTenant(2, {500.0, 1500.0}).ok());

  workload::KvWorkloadSpec spec;
  spec.get_fraction = 0.5;
  spec.get_size = {4096.0, 0.0};
  spec.put_size = {4096.0, 0.0};
  spec.live_bytes_target = 4 * kMiB;
  spec.workers = 4;
  // Tenant 1 mixes in range scans so the SCAN surfaces carry real traffic;
  // tenant 2 stays point-only and must still emit the full schema.
  workload::KvWorkloadSpec scan_spec = spec;
  scan_spec.scan_fraction = 0.15;
  workload::KvTenantWorkload wl1(loop, node, 1, scan_spec, 11);
  workload::KvTenantWorkload wl2(loop, node, 2, spec, 12);

  {
    sim::TaskGroup preload(loop);
    preload.Spawn(wl1.Preload());
    preload.Spawn(wl2.Preload());
    loop.Run();
  }
  node.Start();
  {
    sim::TaskGroup group(loop);
    const SimTime end = loop.Now() + 3 * kSecond;
    wl1.Start(group, end);
    wl2.Start(group, end);
    loop.RunUntil(end + kSecond);
    node.Stop();
    loop.Run();
  }

  const std::string json = NodeStatsToJson(node.Snapshot());
  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(json, &v, &err)) << err;
  ASSERT_TRUE(v.is_object());

  EXPECT_GT(v.Find("time_ns")->number, 0.0);
  const JsonValue* device = v.Find("device");
  ASSERT_NE(device, nullptr);
  EXPECT_GT(device->Find("reads_completed")->number, 0.0);
  EXPECT_GT(device->Find("writes_completed")->number, 0.0);
  EXPECT_TRUE(std::isfinite(device->Find("avg_queue_depth")->number));
  EXPECT_GE(device->Find("avg_queue_depth")->number, 0.0);
  EXPECT_GT(v.Find("capacity")->Find("floor_vops")->number, 0.0);
  EXPECT_GT(v.Find("scheduler")->Find("rounds")->number, 0.0);

  // --- per-tenant section ---
  const JsonValue* tenants = v.Find("tenants");
  ASSERT_TRUE(tenants->is_array());
  ASSERT_EQ(tenants->array.size(), 2u);
  for (const JsonValue& t : tenants->array) {
    SCOPED_TRACE("tenant " + std::to_string(t.Find("tenant")->number));
    EXPECT_GT(t.Find("reservation")->Find("get_rps")->number, 0.0);
    EXPECT_GT(t.Find("reservation")->Find("put_rps")->number, 0.0);
    ASSERT_NE(t.Find("reservation")->Find("scan_rps"), nullptr);
    EXPECT_GE(t.Find("reservation")->Find("scan_rps")->number, 0.0);
    EXPECT_GE(t.Find("allocation_vops")->number, 0.0);
    const bool scanning = t.Find("tenant")->number == 1.0;

    // Application-level GET/PUT/SCAN latency percentiles.
    ExpectHistogramSchema(t.Find("requests")->Find("GET"), true);
    ExpectHistogramSchema(t.Find("requests")->Find("PUT"), true);
    ASSERT_NE(t.Find("requests")->Find("SCAN"), nullptr);
    if (scanning) {
      ExpectHistogramSchema(t.Find("requests")->Find("SCAN"), true);
    } else {
      // Point-only tenant: the SCAN histogram is present but empty.
      EXPECT_EQ(t.Find("requests")->Find("SCAN")->Find("count")->number, 0.0);
    }

    // Scheduler lifecycle: queue wait vs device service, ops == samples.
    const JsonValue* total = t.Find("io")->Find("total");
    ASSERT_NE(total, nullptr);
    const double ops = total->Find("ops")->number;
    EXPECT_GT(ops, 0.0);
    EXPECT_GE(total->Find("chunks")->number, ops);
    EXPECT_GT(total->Find("bytes")->number, 0.0);
    ExpectHistogramSchema(total->Find("queue_wait"), false);
    ExpectHistogramSchema(total->Find("device_service"), true);
    EXPECT_EQ(total->Find("queue_wait")->Find("count")->number, ops);
    EXPECT_EQ(total->Find("device_service")->Find("count")->number, ops);

    // Per-class breakdown sums back to the total and is labeled.
    const JsonValue* classes = t.Find("io")->Find("classes");
    ASSERT_TRUE(classes->is_array());
    ASSERT_FALSE(classes->array.empty());
    double class_ops = 0.0;
    bool saw_direct_put = false;
    for (const JsonValue& c : classes->array) {
      const std::string& app = c.Find("app")->string_value;
      const std::string& internal = c.Find("internal")->string_value;
      EXPECT_TRUE(app == "GET" || app == "PUT" || app == "SCAN" ||
                  app == "none")
          << app;
      EXPECT_TRUE(internal == "direct" || internal == "FLUSH" ||
                  internal == "COMPACT" || internal == "REPL")
          << internal;
      saw_direct_put |= app == "PUT" && internal == "direct";
      EXPECT_GT(c.Find("stats")->Find("ops")->number, 0.0);
      class_ops += c.Find("stats")->Find("ops")->number;
    }
    EXPECT_TRUE(saw_direct_put);
    EXPECT_EQ(class_ops, ops);

    // LSM totals: the small memtable guarantees flush activity.
    const JsonValue* lsm = t.Find("lsm");
    EXPECT_GT(lsm->Find("puts")->number, 0.0);
    EXPECT_GT(lsm->Find("gets")->number, 0.0);
    EXPECT_GT(lsm->Find("flushes")->number, 0.0);
    EXPECT_GT(lsm->Find("flush_bytes")->number, 0.0);
    EXPECT_GT(lsm->Find("flush_ns")->number, 0.0);
    ASSERT_NE(lsm->Find("compactions"), nullptr);
    ASSERT_NE(lsm->Find("compact_bytes_read"), nullptr);
    ASSERT_NE(lsm->Find("compact_bytes_written"), nullptr);
    ASSERT_NE(lsm->Find("stalls"), nullptr);
    ASSERT_NE(lsm->Find("scans"), nullptr);
    ASSERT_NE(lsm->Find("scan_keys"), nullptr);
    ASSERT_NE(lsm->Find("scan_bytes"), nullptr);
    ASSERT_NE(lsm->Find("compaction_policy"), nullptr);
    EXPECT_EQ(lsm->Find("compaction_policy")->string_value, "leveled");
    if (scanning) {
      EXPECT_GT(lsm->Find("scans")->number, 0.0);
      EXPECT_GT(lsm->Find("scan_keys")->number, 0.0);
    }
    ASSERT_TRUE(lsm->Find("files_per_level")->is_array());
    // Read-path sections are always present (zero when filters/cache off).
    const JsonValue* bloom = lsm->Find("bloom");
    ASSERT_NE(bloom, nullptr);
    for (const char* k : {"probes", "negatives", "false_positives"}) {
      ASSERT_NE(bloom->Find(k), nullptr) << k;
    }
    const JsonValue* bc = lsm->Find("block_cache");
    ASSERT_NE(bc, nullptr);
    for (const char* k :
         {"index_hits", "index_misses", "filter_hits", "filter_misses",
          "data_hits", "data_misses", "evictions", "resident_bytes",
          "capacity_bytes"}) {
      ASSERT_NE(bc->Find(k), nullptr) << k;
    }
    const JsonValue* rp = lsm->Find("read_path");
    ASSERT_NE(rp, nullptr);
    for (const char* k : {"index_block_reads", "filter_block_reads",
                          "data_block_reads", "data_cache_hits"}) {
      ASSERT_NE(rp->Find(k), nullptr) << k;
    }
    EXPECT_GE(rp->Find("index_block_reads")->number, 0.0);
  }

  // Node-level shared block cache: present but disabled in this config.
  const JsonValue* nbc = v.Find("block_cache");
  ASSERT_NE(nbc, nullptr);
  EXPECT_FALSE(nbc->Find("enabled")->bool_value);

  // --- provisioning audit log ---
  const JsonValue* audit = v.Find("audit");
  ASSERT_TRUE(audit->is_array());
  ASSERT_FALSE(audit->array.empty());  // policy ran >= 1 interval
  const JsonValue& rec = audit->array.back();
  EXPECT_GT(rec.Find("time_ns")->number, 0.0);
  EXPECT_GT(rec.Find("capacity_floor_vops")->number, 0.0);
  EXPECT_GT(rec.Find("total_required_vops")->number, 0.0);
  EXPECT_GT(rec.Find("scale")->number, 0.0);
  EXPECT_LE(rec.Find("scale")->number, 1.0);
  ASSERT_NE(rec.Find("overbooked"), nullptr);
  ASSERT_EQ(rec.Find("tenants")->array.size(), 2u);
  for (const JsonValue& e : rec.Find("tenants")->array) {
    SCOPED_TRACE("audit tenant " + std::to_string(e.Find("tenant")->number));
    EXPECT_GT(e.Find("reserved_get_rps")->number, 0.0);
    EXPECT_GT(e.Find("reserved_put_rps")->number, 0.0);
    ASSERT_NE(e.Find("reserved_scan_rps"), nullptr);
    EXPECT_GE(e.Find("reserved_scan_rps")->number, 0.0);
    ASSERT_NE(e.Find("compaction_policy"), nullptr);
    EXPECT_EQ(e.Find("compaction_policy")->string_value, "leveled");
    for (const char* prof : {"profile_get", "profile_put", "profile_scan"}) {
      const JsonValue* p = e.Find(prof);
      ASSERT_NE(p, nullptr) << prof;
      for (const char* comp : {"direct", "flush", "compact"}) {
        ASSERT_NE(p->Find(comp), nullptr) << prof << "." << comp;
        EXPECT_GE(p->Find(comp)->number, 0.0) << prof << "." << comp;
      }
    }
    // Profiles have been learned from real traffic, so prices are positive
    // and the grant follows required * scale.
    EXPECT_GT(e.Find("price_get")->number, 0.0);
    EXPECT_GT(e.Find("price_put")->number, 0.0);
    ASSERT_NE(e.Find("price_scan"), nullptr);
    EXPECT_GE(e.Find("price_scan")->number, 0.0);
    EXPECT_GT(e.Find("required_vops")->number, 0.0);
    EXPECT_NEAR(e.Find("granted_vops")->number,
                e.Find("required_vops")->number * rec.Find("scale")->number,
                1e-6 * e.Find("required_vops")->number + 1e-9);
  }
}

TEST(NodeStatsJsonTest, BatchingSectionsEmitted) {
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = SnapshotTable();
  opt.prefill_bytes = 0;
  opt.lsm_options.write_buffer_bytes = 256 * 1024;
  opt.lsm_options.max_bytes_level1 = 1 * kMiB;
  opt.lsm_options.wal_group_commit = true;
  opt.lsm_options.table_cache_bytes = 64 * kKiB;
  opt.enable_read_coalescing = true;
  opt.enable_cache = true;
  opt.cache_bytes = 4 * 1024;  // tiny: early keys age out of the object cache
  StorageNode node(loop, opt);
  ASSERT_TRUE(node.AddTenant(1, {}).ok());

  auto key = [](int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i);
    return std::string(buf);
  };
  // Concurrent PUTs so the WAL forms real batches...
  auto writer = [&](int i) -> sim::Task<void> {
    co_await node.Put(1, key(i), std::string(1024, 'v'));
  };
  for (int i = 0; i < 16; ++i) {
    sim::Detach(writer(i));
  }
  loop.Run();
  // ...then enough data to flush tables and exercise the table cache.
  auto fill = [&]() -> sim::Task<void> {
    for (int i = 16; i < 300; ++i) {
      co_await node.Put(1, key(i), std::string(1024, 'v'));
    }
    co_await node.partition(1)->WaitIdle();
  };
  sim::Detach(fill());
  loop.Run();
  // Duplicate in-flight GETs of a flushed, cache-cold key: coalescing.
  auto get0 = [&]() -> sim::Task<void> {
    auto r = co_await node.Get(1, key(0));
    EXPECT_TRUE(r.status().ok());
  };
  for (int i = 0; i < 4; ++i) {
    sim::Detach(get0());
  }
  loop.Run();
  // A recently written key is object-cache resident.
  auto get_recent = [&]() -> sim::Task<void> {
    auto r = co_await node.Get(1, key(299));
    EXPECT_TRUE(r.status().ok());
  };
  sim::Detach(get_recent());
  loop.Run();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(NodeStatsToJson(node.Snapshot()), &v, &err)) << err;

  const JsonValue* oc = v.Find("object_cache");
  ASSERT_NE(oc, nullptr);
  EXPECT_TRUE(oc->Find("enabled")->bool_value);
  EXPECT_GE(oc->Find("hits")->number, 1.0);
  EXPECT_GE(oc->Find("misses")->number, 1.0);
  EXPECT_GE(oc->Find("evictions")->number, 1.0);  // tiny budget, 300 keys
  EXPECT_GT(oc->Find("resident_bytes")->number, 0.0);
  ASSERT_NE(v.Find("coalesced_gets"), nullptr);
  EXPECT_EQ(v.Find("coalesced_gets")->number, 3.0);

  ASSERT_EQ(v.Find("tenants")->array.size(), 1u);
  const JsonValue& t = v.Find("tenants")->array[0];
  const JsonValue* wal = t.Find("lsm")->Find("wal");
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->Find("appends")->number, 300.0);
  EXPECT_EQ(wal->Find("batched_records")->number, 300.0);
  EXPECT_GT(wal->Find("batches")->number, 0.0);
  EXPECT_LT(wal->Find("batches")->number, 300.0);
  EXPECT_GE(wal->Find("max_batch_records")->number, 2.0);
  const JsonValue* tc = t.Find("lsm")->Find("table_cache");
  ASSERT_NE(tc, nullptr);
  EXPECT_GE(tc->Find("misses")->number, 1.0);
  EXPECT_GT(tc->Find("resident_bytes")->number, 0.0);
  ASSERT_NE(tc->Find("hits"), nullptr);
  ASSERT_NE(tc->Find("evictions"), nullptr);
}

TEST(NodeStatsJsonTest, FilteredCachedReadPathSectionsEmitted) {
  sim::EventLoop loop;
  NodeOptions opt;
  opt.calibration = SnapshotTable();
  opt.prefill_bytes = 0;
  opt.lsm_options.write_buffer_bytes = 64 * 1024;
  opt.lsm_options.max_bytes_level1 = 256 * 1024;
  opt.lsm_options.bloom_bits_per_key = 10;
  opt.lsm_options.block_cache_bytes = 1 * kMiB;
  StorageNode node(loop, opt);
  ASSERT_TRUE(node.AddTenant(1, {}).ok());

  auto key = [](int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%08d", i);
    return std::string(buf);
  };
  auto run = [&]() -> sim::Task<void> {
    for (int i = 0; i < 300; ++i) {
      co_await node.Put(1, key(i), std::string(1024, 'v'));
    }
    co_await node.partition(1)->WaitIdle();
    for (int i = 0; i < 300; i += 30) {
      (void)co_await node.Get(1, key(i));
      (void)co_await node.Get(1, key(i));  // repeat: data-cache hit
      // In-range absent key: a filter negative.
      (void)co_await node.Get(1, key(i) + "x");
    }
  };
  sim::Detach(run());
  loop.Run();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(JsonParse(NodeStatsToJson(node.Snapshot()), &v, &err)) << err;

  // Node-level shared cache rollup.
  const JsonValue* nbc = v.Find("block_cache");
  ASSERT_NE(nbc, nullptr);
  EXPECT_TRUE(nbc->Find("enabled")->bool_value);
  EXPECT_EQ(nbc->Find("capacity_bytes")->number, 1.0 * kMiB);
  EXPECT_GT(nbc->Find("resident_bytes")->number, 0.0);
  EXPECT_GT(nbc->Find("entries")->number, 0.0);
  EXPECT_GE(nbc->Find("hits")->number, 1.0);
  EXPECT_GE(nbc->Find("misses")->number, 1.0);

  ASSERT_EQ(v.Find("tenants")->array.size(), 1u);
  const JsonValue* lsm = v.Find("tenants")->array[0].Find("lsm");
  const JsonValue* bloom = lsm->Find("bloom");
  EXPECT_GT(bloom->Find("probes")->number, 0.0);
  EXPECT_GT(bloom->Find("negatives")->number, 0.0);
  const JsonValue* bc = lsm->Find("block_cache");
  EXPECT_GT(bc->Find("data_hits")->number, 0.0);
  EXPECT_GT(bc->Find("data_misses")->number, 0.0);
  EXPECT_EQ(bc->Find("capacity_bytes")->number, 1.0 * kMiB);
  const JsonValue* rp = lsm->Find("read_path");
  EXPECT_GT(rp->Find("data_block_reads")->number, 0.0);
  EXPECT_GT(rp->Find("data_cache_hits")->number, 0.0);
  EXPECT_GT(rp->Find("filter_block_reads")->number, 0.0);
}

}  // namespace
}  // namespace libra::kv
