// Immutable sorted string tables.
//
// Layout (paper §3.1 mechanics: block reads + one index block per lookup):
//   [data block 0][data block 1]...[index block][footer]
//   data block:  concatenated records, ~4KB target size
//   index block: per data block {last_key, offset, size}
//   footer (16B): index offset u64, index size u64
//
// A point lookup loads the index block (>= one 4KB read, cached in memory
// after first use like LevelDB's table cache), binary-searches it, and
// reads exactly one data block. There is no bloom filter, matching 2014
// LevelDB defaults — every eligible file costs at least a data-block read,
// which is the per-file GET amplification the paper measures (Figs. 2/12).
//
// The builder emits the table through a sequential, chunked append stream
// (the paper's "asynchronous, io-efficient" FLUSH/COMPACT writes).

#ifndef LIBRA_SRC_LSM_SSTABLE_H_
#define LIBRA_SRC_LSM_SSTABLE_H_

#include <functional>
#include <memory>
#include <tuple>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fs/sim_fs.h"
#include "src/iosched/io_tag.h"
#include "src/lsm/format.h"
#include "src/sim/task.h"

namespace libra::lsm {

struct SstableOptions {
  uint32_t block_bytes = 4096;          // data block target
  uint32_t write_chunk_bytes = 262144;  // sequential append granularity
};

// Builds a table in memory block by block; Finish() streams it to `file`.
class SstableBuilder {
 public:
  SstableBuilder(fs::SimFs& fs, fs::FileId file, SstableOptions options = {});

  // Keys must arrive in internal order (user key asc, seq desc).
  void Add(std::string_view key, SequenceNumber seq, ValueType type,
           std::string_view value);

  // Writes all pending data to the file with `tag` IO. No Adds afterwards.
  sim::Task<Status> Finish(const iosched::IoTag& tag);

  uint64_t estimated_bytes() const { return buffer_.size() + block_.size(); }
  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest_key() const { return smallest_; }
  const std::string& largest_key() const { return largest_; }

 private:
  void FlushBlock();

  fs::SimFs& fs_;
  fs::FileId file_;
  SstableOptions options_;

  std::string buffer_;  // completed data blocks
  std::string block_;   // current data block
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;
  };
  std::vector<IndexEntry> index_;
  std::string last_key_in_block_;
  std::string smallest_;
  std::string largest_;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

// Reads a finished table. Footer and index block are loaded from disk on
// first access and cached in memory thereafter (tables are immutable); data
// blocks are always read from the device — O_DIRECT leaves no page cache,
// and the engine keeps no block cache.
class SstableReader {
 public:
  SstableReader(fs::SimFs& fs, fs::FileId file, SstableOptions options = {});

  struct GetResult {
    bool found = false;    // an entry for the key exists in this table
    bool deleted = false;  // ... and it is a tombstone
    std::string value;
    Status status;         // IO / parse errors
  };

  // Point lookup: newest entry for `key` visible at `snapshot`.
  sim::Task<GetResult> Get(const iosched::IoTag& tag, std::string_view key,
                           SequenceNumber snapshot);

  // Sequential scan for compaction: reads the whole table in write_chunk
  // sized IOs and yields records in order via `fn`.
  sim::Task<Status> ScanAll(
      const iosched::IoTag& tag,
      const std::function<void(const Record&)>& fn);

 private:
  // Loads and parses the footer + index block into the cache on first use
  // (charged to `tag`); later calls are free.
  sim::Task<Status> EnsureIndex(const iosched::IoTag& tag);

  fs::SimFs& fs_;
  fs::FileId file_;
  SstableOptions options_;
  // Footer and parsed index, cached after the first (charged) load.
  bool footer_cached_ = false;
  uint64_t index_offset_ = 0;
  uint64_t index_size_ = 0;
  bool index_cached_ = false;
  std::vector<std::tuple<std::string, uint64_t, uint32_t>> index_cache_;
};

}  // namespace libra::lsm

#endif  // LIBRA_SRC_LSM_SSTABLE_H_
