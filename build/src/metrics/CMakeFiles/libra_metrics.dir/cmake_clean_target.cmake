file(REMOVE_RECURSE
  "liblibra_metrics.a"
)
