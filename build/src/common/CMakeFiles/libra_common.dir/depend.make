# Empty dependencies file for libra_common.
# This may be replaced when dependencies are built.
