// Per-tenant app-request resource profiles (paper §4.1).
//
// The tracker accumulates tagged VOP consumption within a policy interval:
//   u_t^a — VOPs consumed directly by app-request type a,
//   u_t^i — VOPs consumed by internal operation i (FLUSH, COMPACT),
//   s_t^a — normalized (1KB) app requests executed,
//   s_t^i — internal operations executed,
//   e_t^{a,i} — internal-op triggers attributed to app-request a.
// At each interval roll it folds these into EWMAs:
//   q_t^a   = EWMA(u_t^a / s_t^a)         direct VOPs per normalized request
//   q_t^i   = EWMA(u_t^i / s_t^i)         VOPs per internal op
//   q_t^{a,i} = q_t^i * (e / s_a)         indirect VOPs per normalized request
// For sporadic operations (COMPACT can take many intervals), the trigger
// rate e/s is normalized by requests accumulated since the last trigger,
// and partial resource consumption of in-flight operations is attributed as
// it happens.
//
// The full profile (paper):
//   profile_t^a = q_t^a + sum_i q_t^{a,i}
// is the VOP price of one normalized request, used by the resource policy
// to provision allocations.

#ifndef LIBRA_SRC_IOSCHED_RESOURCE_TRACKER_H_
#define LIBRA_SRC_IOSCHED_RESOURCE_TRACKER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/ewma.h"
#include "src/iosched/io_tag.h"
#include "src/ssd/io_types.h"

namespace libra::iosched {

// Cumulative per-tenant IO counters (for throughput measurement in the
// evaluation harnesses; never reset).
struct TenantIoStats {
  double vops = 0.0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;

  uint64_t total_ops() const { return read_ops + write_ops; }
  uint64_t total_bytes() const { return read_bytes + write_bytes; }
};

// One app-request class's profile with per-component breakdown (Fig. 12
// bottom: PUT cost split into direct, FLUSH, and COMPACT components).
struct AppRequestProfile {
  double direct = 0.0;                      // q^a
  double indirect[kNumInternalOps] = {0.0};  // q^{a,i}, indexed by InternalOp

  double total() const {
    double t = direct;
    for (double v : indirect) {
      t += v;
    }
    return t;
  }
};

class ResourceTracker {
 public:
  // alpha: EWMA weight for profile smoothing.
  explicit ResourceTracker(double ewma_alpha = 0.3);

  // --- recording (hot path) ---

  // Called by the scheduler for every completed IO chunk.
  void RecordIo(const IoTag& tag, ssd::IoType type, uint32_t size_bytes,
                double vop_cost);

  // Called for one contributor's slice of a shared (batched) IO chunk.
  // Accounting is identical to RecordIo — the slice's bytes and its exact
  // pre-split VOP cost land on the contributor's (tenant, app, internal-op)
  // class, so profiles and the audit trail stay truthful under batching —
  // plus cumulative shared-IO counters so tests and demos can measure how
  // much traffic rode merged IOPs.
  void RecordIoShare(const IoTag& tag, ssd::IoType type, uint32_t size_bytes,
                     double vop_cost);

  // Called by the serving layer when an app request completes.
  void RecordAppRequest(TenantId tenant, AppRequest app, uint64_t size_bytes);

  // Called by the persistence engine when app-request activity triggers an
  // internal operation (e.g. a PUT fills the WAL and starts a FLUSH).
  void RecordTrigger(TenantId tenant, AppRequest origin, InternalOp op);

  // Called when an internal operation finishes (defines s_t^i).
  void RecordInternalOpDone(TenantId tenant, InternalOp op);

  // --- interval roll (policy path) ---

  // Folds the current interval's counters into the EWMAs and clears them.
  void Roll();

  // --- queries ---

  // Profile of one request class; `fallback_direct` seeds classes with no
  // observations yet (e.g. the cost-model price of the object IO itself).
  AppRequestProfile Profile(TenantId tenant, AppRequest app,
                            double fallback_direct = 0.0) const;

  // Cumulative IO stats (all tags) for a tenant.
  const TenantIoStats& Stats(TenantId tenant) const;

  // Cumulative VOPs for one (app request, internal op, IO direction) class
  // — the Fig. 2 stacked-consumption breakdown (GET read IO, PUT write IO,
  // FLUSH read/write IO, COMPACT read/write IO).
  double VopsBy(TenantId tenant, AppRequest app, InternalOp internal,
                ssd::IoType type) const;

  // Smoothed mean request size in bytes for a class; 0 until observed.
  // Used for object-size-only (no-profile) pricing.
  double MeanRequestSize(TenantId tenant, AppRequest app) const;

  // Cumulative normalized requests executed (throughput measurement).
  double NormalizedRequestsTotal(TenantId tenant, AppRequest app) const;

  // Total VOPs consumed across all tenants since construction.
  double total_vops() const { return total_vops_; }

  // Cumulative slices recorded via RecordIoShare and the bytes they
  // covered (0 when batching is off — the default).
  uint64_t shared_io_shares() const { return shared_io_shares_; }
  uint64_t shared_io_bytes() const { return shared_io_bytes_; }

  std::vector<TenantId> tenants() const;

 private:
  struct AppClass {
    double u = 0.0;        // interval VOPs
    double s = 0.0;        // interval normalized requests
    double bytes = 0.0;    // interval request bytes
    double requests = 0.0; // interval request count (not normalized)
    double s_total = 0.0;  // cumulative normalized requests (never reset)
    Ewma q;
    Ewma mean_size;
    explicit AppClass(double alpha) : q(alpha), mean_size(alpha) {}
  };
  struct InternalClass {
    double u = 0.0;    // interval VOPs
    double ops = 0.0;  // interval completed ops
    Ewma q;
    explicit InternalClass(double alpha) : q(alpha) {}
  };
  struct TriggerClass {
    double triggers = 0.0;  // since-last-roll triggers
    double s_accum = 0.0;   // normalized requests since last observed trigger
    Ewma rate;              // triggers per normalized request
    explicit TriggerClass(double alpha) : rate(alpha) {}
  };
  struct Tenant {
    explicit Tenant(double alpha);
    std::vector<AppClass> app;            // by AppRequest
    std::vector<InternalClass> internal;  // by InternalOp
    std::vector<TriggerClass> trig;       // [app][internal] flattened
    TenantIoStats stats;
    // Cumulative VOPs by [app][internal][io type].
    double vops_by[kNumAppRequests][kNumInternalOps][2] = {};
  };

  Tenant& GetTenant(TenantId id);

  double alpha_;
  std::unordered_map<TenantId, Tenant> tenants_;
  TenantIoStats empty_stats_;
  double total_vops_ = 0.0;
  uint64_t shared_io_shares_ = 0;
  uint64_t shared_io_bytes_ = 0;
};

}  // namespace libra::iosched

#endif  // LIBRA_SRC_IOSCHED_RESOURCE_TRACKER_H_
