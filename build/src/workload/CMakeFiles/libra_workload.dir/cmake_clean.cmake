file(REMOVE_RECURSE
  "CMakeFiles/libra_workload.dir/workload.cc.o"
  "CMakeFiles/libra_workload.dir/workload.cc.o.d"
  "liblibra_workload.a"
  "liblibra_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libra_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
