// Dynamic reservations: a latency-critical tenant doubles its reservation
// mid-run (think: traffic spike commitment) while a batch tenant keeps
// its own. The resource policy reprices both against live app-request
// profiles every second and the throughput split follows — including the
// overflow notification when the node would be overbooked.

#include <cstdio>
#include <memory>

#include "src/kv/storage_node.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"
#include "src/ssd/calibration.h"
#include "src/workload/workload.h"

using namespace libra;

int main() {
  const ssd::DeviceProfile profile = ssd::Intel320Profile();
  ssd::CalibrationOptions copt;
  copt.measure = 500 * kMillisecond;
  const ssd::CalibrationTable table = ssd::Calibrate(profile, copt);

  sim::EventLoop loop;
  kv::NodeOptions options;
  options.device_profile = profile;
  options.calibration = table;
  options.prefill_bytes = 0;
  kv::StorageNode node(loop, options);

  const iosched::TenantId frontend = 1;  // GET-heavy, small objects
  const iosched::TenantId batch = 2;     // PUT-heavy, large objects
  (void)node.AddTenant(frontend, {3000.0, 300.0});
  (void)node.AddTenant(batch, {100.0, 1500.0});

  int overflows = 0;
  node.policy().SetOverflowCallback([&](const iosched::OverflowEvent& ev) {
    ++overflows;
    std::printf("t=%.0fs OVERBOOKED: need %.0f VOP/s, floor %.0f -> scale %.2f "
                "(higher-level policy would migrate partitions)\n",
                ToSeconds(ev.time), ev.required_vops, ev.capacity_vops,
                ev.scale);
  });

  workload::KvWorkloadSpec fe_spec;
  fe_spec.get_fraction = 0.9;
  fe_spec.get_size = {4096.0, 1024.0};
  fe_spec.put_size = {4096.0, 1024.0};
  fe_spec.live_bytes_target = 8 * kMiB;
  fe_spec.workers = 8;
  workload::KvTenantWorkload fe(loop, node, frontend, fe_spec, 11);

  workload::KvWorkloadSpec batch_spec;
  batch_spec.get_fraction = 0.1;
  batch_spec.get_size = {65536.0, 4096.0};
  batch_spec.put_size = {65536.0, 4096.0};
  batch_spec.live_bytes_target = 16 * kMiB;
  batch_spec.workers = 8;
  workload::KvTenantWorkload batch_wl(loop, node, batch, batch_spec, 13);

  {
    sim::TaskGroup preload(loop);
    preload.Spawn(fe.Preload());
    preload.Spawn(batch_wl.Preload());
    loop.Run();
  }
  node.Start();

  const SimTime start = loop.Now();
  const SimTime bump = start + 8 * kSecond;
  const SimTime end = start + 16 * kSecond;

  double fe_gets_at_bump = 0.0;
  loop.ScheduleAt(bump, [&] {
    fe_gets_at_bump = node.tracker().NormalizedRequestsTotal(
        frontend, iosched::AppRequest::kGet);
    std::printf("t=%.0fs frontend triples its GET reservation to 9000/s\n",
                ToSeconds(loop.Now() - start));
    node.UpdateReservation(frontend, {9000.0, 300.0});
  });

  {
    sim::TaskGroup group(loop);
    fe.Start(group, end);
    batch_wl.Start(group, end);
    // The started policy keeps a timer pending forever: bound the run,
    // stop it, then drain the finite remainder.
    loop.RunUntil(end + kSecond);
    node.Stop();
    loop.Run();
  }

  const double fe_gets_total = node.tracker().NormalizedRequestsTotal(
      frontend, iosched::AppRequest::kGet);
  std::printf("\nfrontend normalized GET/s: %7.0f before bump, %7.0f after\n",
              fe_gets_at_bump / 8.0,
              (fe_gets_total - fe_gets_at_bump) / 8.0);
  std::printf("frontend allocation now: %.0f VOP/s; batch: %.0f VOP/s\n",
              node.scheduler().Allocation(frontend),
              node.scheduler().Allocation(batch));
  std::printf("overflow notifications: %d\n", overflows);
  return 0;
}
