# Empty compiler generated dependencies file for libra_metrics.
# This may be replaced when dependencies are built.
