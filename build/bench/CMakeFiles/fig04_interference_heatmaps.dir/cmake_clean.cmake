file(REMOVE_RECURSE
  "CMakeFiles/fig04_interference_heatmaps.dir/fig04_interference_heatmaps.cc.o"
  "CMakeFiles/fig04_interference_heatmaps.dir/fig04_interference_heatmaps.cc.o.d"
  "fig04_interference_heatmaps"
  "fig04_interference_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_interference_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
