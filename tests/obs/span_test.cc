#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/json.h"

namespace libra::obs {
namespace {

SpanRecord MakeSpan(uint64_t trace, uint64_t span, uint64_t parent,
                    SpanKind kind) {
  SpanRecord r;
  r.trace_id = trace;
  r.span_id = span;
  r.parent_span = parent;
  r.kind = kind;
  return r;
}

TEST(SpanCollectorTest, MintsSequentialIdsAndRecords) {
  SpanCollector c(16);
  const TraceContext a = c.MintTrace();
  const TraceContext b = c.MintTrace();
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(c.minted_traces(), 2u);

  SpanRecord r;
  r.trace_id = a.trace_id;
  r.span_id = a.span_id;
  c.Record(r);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.total_recorded(), 1u);
  EXPECT_EQ(c.dropped(), 0u);
}

TEST(SpanCollectorTest, RingEvictsOldestAndCountsDrops) {
  SpanCollector c(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    c.Record(MakeSpan(i, i, 0, SpanKind::kRequest));
  }
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.total_recorded(), 10u);
  EXPECT_EQ(c.dropped(), 6u);
  const std::vector<SpanRecord> spans = c.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, newest retained.
  EXPECT_EQ(spans.front().span_id, 7u);
  EXPECT_EQ(spans.back().span_id, 10u);
}

TEST(SpanCollectorTest, SamplingMintsOneOfEveryN) {
  SpanCollector c(16, /*sample_every=*/4);
  int valid = 0;
  for (int i = 0; i < 16; ++i) {
    if (c.MintTrace().valid()) {
      ++valid;
    }
  }
  EXPECT_EQ(valid, 4);
  EXPECT_EQ(c.minted_traces(), 4u);
  EXPECT_EQ(c.sampled_out(), 12u);
}

TEST(SpanCollectorTest, MintAlwaysIgnoresSampling) {
  SpanCollector c(16, /*sample_every=*/1000);
  EXPECT_TRUE(c.MintAlways().valid());
}

TEST(SpanCollectorTest, MintChildSharesTraceId) {
  SpanCollector c(16);
  const TraceContext root = c.MintTrace();
  const TraceContext child = c.MintChild(root);
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  // An invalid parent yields an invalid child (untraced request flows
  // through without minting).
  EXPECT_FALSE(c.MintChild(TraceContext{}).valid());
}

TEST(SpanCollectorTest, SeedNamespacesIds) {
  SpanCollector a(4, 1, /*id_seed=*/1);
  SpanCollector b(4, 1, /*id_seed=*/2);
  const TraceContext ca = a.MintTrace();
  const TraceContext cb = b.MintTrace();
  EXPECT_NE(ca.trace_id, cb.trace_id);
  EXPECT_NE(ca.span_id, cb.span_id);
}

TEST(SpanLinkSetTest, RetainsBoundedSampleCountsAll) {
  SpanLinkSet s;
  s.Add(TraceContext{});  // invalid: ignored entirely
  EXPECT_EQ(s.total, 0u);
  for (uint64_t i = 1; i <= 10; ++i) {
    s.Add(TraceContext{i, i});
  }
  EXPECT_EQ(s.total, 10u);
  EXPECT_EQ(s.count, static_cast<uint32_t>(kMaxSpanLinks));
  EXPECT_EQ(s.items[0].trace_id, 1u);

  SpanLinkSet t;
  t.Add(TraceContext{99, 99});
  t.Merge(s);
  EXPECT_EQ(t.total, 11u);  // unretained contributors still counted
  EXPECT_EQ(t.count, static_cast<uint32_t>(kMaxSpanLinks));
}

TEST(CausallyReachesTest, FollowsParentsAndLinksBackwards) {
  // PUT request (1) -> [origin link] flush (2) -> [lineage] compact (3)
  // -> compact device IO (4, child of 3).
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(10, 1, 0, SpanKind::kRequest));
  SpanRecord flush = MakeSpan(20, 2, 0, SpanKind::kFlush);
  flush.links.Add(TraceContext{10, 1});
  spans.push_back(flush);
  SpanRecord compact = MakeSpan(20, 3, 0, SpanKind::kCompact);
  compact.links.Add(TraceContext{20, 2});
  spans.push_back(compact);
  spans.push_back(MakeSpan(20, 4, 3, SpanKind::kDeviceIo));

  EXPECT_TRUE(CausallyReaches(spans, 4, [](const SpanRecord& r) {
    return r.kind == SpanKind::kRequest;
  }));
  EXPECT_FALSE(CausallyReaches(spans, 1, [](const SpanRecord& r) {
    return r.kind == SpanKind::kDeviceIo;
  }));
}

TEST(SpanExportTest, ChromeJsonParsesAndIsDeterministic) {
  SpanCollector c(16);
  const TraceContext root = c.MintTrace();
  SpanRecord req = MakeSpan(root.trace_id, root.span_id, 0, SpanKind::kRequest);
  req.tenant = 3;
  req.start_ns = 1000;
  req.end_ns = 5000;
  c.Record(req);
  const TraceContext dev = c.MintChild(root);
  SpanRecord io = MakeSpan(dev.trace_id, dev.span_id, root.span_id,
                           SpanKind::kDeviceIo);
  io.tenant = 3;
  io.start_ns = 2000;
  io.end_ns = 4000;
  io.is_write = 1;
  c.Record(io);

  const std::string json = SpansToChromeTraceJson(c, 7, "n7");
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonParse(json, &doc, &err)) << err;
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  // Metadata, two "X" slices, and one flow pair for the parent edge.
  int slices = 0, flows = 0, meta = 0;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.Find("ph")->string_value;
    if (ph == "X") {
      ++slices;
    } else if (ph == "s" || ph == "f") {
      ++flows;
    } else if (ph == "M") {
      ++meta;
    }
  }
  EXPECT_EQ(slices, 2);
  EXPECT_EQ(flows, 2);
  EXPECT_GE(meta, 2);  // process name + tenant thread name

  EXPECT_EQ(json, SpansToChromeTraceJson(c, 7, "n7"));  // byte-stable
}

}  // namespace
}  // namespace libra::obs
