// Shared infrastructure for the figure-reproduction benches: flag parsing
// (--full for the paper's full grids, --csv for machine-readable output,
// --jobs=N for parallel sweeps), memoized device calibration, the raw-IO
// experiment cell runner used by the Fig. 4/5/7/9 harnesses, and the
// thread-pool sweep runner that fans independent cells across cores.

#ifndef LIBRA_BENCH_BENCH_COMMON_H_
#define LIBRA_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/iosched/cost_model.h"
#include "src/metrics/table.h"
#include "src/obs/span.h"
#include "src/ssd/calibration.h"
#include "src/ssd/profile.h"

namespace libra::bench {

struct BenchArgs {
  bool full = false;        // paper-size grids (slower)
  bool csv = false;         // CSV instead of aligned text
  std::string stats_json;   // --stats-json=PATH: machine-readable snapshot
  int jobs = 1;             // --jobs=N: worker threads for sweeps (0 = all cores)
  int nodes = 4;            // --nodes=N: cluster size (multi-node benches)
  std::string trace_json;   // --trace-json=PATH: Chrome/Perfetto span export
  uint32_t trace_sample = 1;  // --trace-sample=1/N: trace 1 of every N roots
  // --sim-threads=N: worker threads for the parallel simulation engine
  // (0 = all cores). N > 1 switches multi-node benches to the epoch-barrier
  // MultiLoop engine; output is byte-identical for every N at a fixed
  // --rpc-latency-us, only wall-clock time changes.
  int sim_threads = 1;
  // --rpc-latency-us=N: minimum cross-node RPC latency. 0 keeps the
  // historical instantaneous-RPC serial engine; > 0 selects the parallel
  // engine (and doubles as its conservative lookahead) even at one thread.
  SimDuration rpc_latency = 0;
};

// Parses the flags shared by every bench binary (--full, --csv,
// --stats-json=PATH, --jobs=N, --nodes=N, --trace-json=PATH,
// --trace-sample=1/N, --sim-threads=N, --rpc-latency-us=N) and installs the
// --stats-json capture hook. Unknown flags are ignored so binaries can
// layer their own parsing on top.
BenchArgs ParseCommonFlags(int argc, char** argv);

// True when --trace-json=PATH was given: benches should enable span
// collection on their schedulers/nodes and export the spans before exit.
inline bool TraceRequested(const BenchArgs& args) {
  return !args.trace_json.empty();
}

// Renders `groups` (one per node) as Chrome trace_event JSON — loadable in
// Perfetto / chrome://tracing — and writes it to the --trace-json path.
// Call while the collectors are still alive (the schedulers own them); the
// capture is not deferred to process exit. No-op without the flag.
void WriteTraceJson(const BenchArgs& args,
                    const std::vector<obs::SpanExportGroup>& groups);

[[deprecated("use bench::ParseCommonFlags")]]
inline BenchArgs ParseArgs(int argc, char** argv) {
  return ParseCommonFlags(argc, argv);
}

// Calibration for a device profile, computed once per process. Thread-safe;
// still, call it once per profile before a parallel sweep (a cold first
// lookup runs a calibration sim under the cache lock, serializing workers).
const ssd::CalibrationTable& TableFor(const ssd::DeviceProfile& profile);

// --- parallel sweep runner ---
//
// Fans the cells of an experiment sweep across a thread pool. Cells must be
// independent (each RunRawCell / KV cell builds its own EventLoop, device
// and scheduler, so they are), and each cell's result is written to its own
// slot — emission stays serial, in index order, after the pool drains, so
// output is byte-identical to a serial run regardless of --jobs.
class SweepRunner {
 public:
  // jobs <= 1 runs cells inline on the calling thread (no pool, no
  // threads). jobs == 0 is resolved by ParseArgs, not here.
  explicit SweepRunner(int jobs) : jobs_(jobs) {}

  // Runs fn(i) for every i in [0, count), distributing cells to workers by
  // atomic index in submission order. Returns when all cells finished. If a
  // cell throws, the first exception is rethrown here after the pool joins.
  void ForEach(size_t count, const std::function<void(size_t)>& fn) const;

  // ForEach that collects fn(i) into a vector in index order.
  template <typename R, typename Fn>
  std::vector<R> Map(size_t count, Fn&& fn) const {
    std::vector<R> out(count);
    ForEach(count, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  int jobs() const { return jobs_; }

 private:
  int jobs_;
};

// Emits a table in the format the args request. With --stats-json, the
// table is also captured (as JSON, under the current Section title) into
// the stats file written at process exit.
void Emit(const BenchArgs& args, const metrics::Table& table);

// Prints a section header (skipped in CSV mode) and names the sections
// captured into --stats-json until the next call.
void Section(const BenchArgs& args, const std::string& title);

// Captures a pre-rendered JSON document (e.g. kv::NodeStatsToJson output)
// as a named section of the --stats-json file. No-op without the flag.
void AddStatsSection(const BenchArgs& args, const std::string& name,
                     std::string json);

// --- raw-IO experiment cell (paper §4.2/§6.2 setup) ---
//
// 8 tenants with equal VOP allocations at queue depth 32, split into two
// halves (A = first half, B = second half):
//   kMixed:     every tenant issues reads (size_a) and writes (size_b) at
//               read_fraction — the mixed-ratio maps of Fig. 4.
//   kReadWrite: half pure readers (size_a), half pure writers (size_b) —
//               Fig. 4's "1:1" map and the Fig. 7 insulation grid.
//   kReadRead / kWriteWrite: both halves same op type at sizes a and b —
//               the rr/ww panels of Fig. 9.
// Sizes may be fixed or log-normal (sigma > 0).
enum class CellMode { kMixed, kReadWrite, kReadRead, kWriteWrite };

struct RawCellSpec {
  CellMode mode = CellMode::kMixed;
  double read_fraction = 0.5;   // kMixed only
  double size_a_bytes = 4096;
  double size_b_bytes = 4096;
  double sigma_bytes = 0.0;     // applied to both
  std::string cost_model = "exact";
  int num_tenants = 8;
  int workers_per_tenant = 4;   // 8 x 4 = QD 32
  SimDuration warmup = 300 * kMillisecond;
  SimDuration measure = 2 * kSecond;
  uint64_t seed = 11;
};

struct RawCellResult {
  double total_vops_per_sec = 0.0;      // under the exact model
  // Per-tenant rates over the measurement window:
  std::vector<double> tenant_vops;        // VOP/s charged by the model under test
  std::vector<double> tenant_exact_vops;  // VOP/s re-priced with the exact model
  std::vector<double> tenant_iops;        // physical ops/s completed
  std::vector<double> tenant_bytes;       // bytes/s moved
  std::vector<bool> tenant_is_reader;     // exclusive mode labeling
};

RawCellResult RunRawCell(const ssd::DeviceProfile& profile,
                         const RawCellSpec& spec);

// Per-size IOP-size grid used by the sweeps: {1,2,...,256} KB (full) or a
// coarse subset (quick).
std::vector<uint32_t> SweepSizesKb(bool full);

}  // namespace libra::bench

#endif  // LIBRA_BENCH_BENCH_COMMON_H_
