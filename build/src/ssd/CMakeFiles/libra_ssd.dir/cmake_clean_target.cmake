file(REMOVE_RECURSE
  "liblibra_ssd.a"
)
