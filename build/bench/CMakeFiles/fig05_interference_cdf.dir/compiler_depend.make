# Empty compiler generated dependencies file for fig05_interference_cdf.
# This may be replaced when dependencies are built.
