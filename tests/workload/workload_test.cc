#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/iosched/cost_model.h"

namespace libra::workload {
namespace {

ssd::CalibrationTable WlTable() {
  ssd::CalibrationTable t;
  t.sizes_kb = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  t.rand_read_iops = {38000, 36000, 33000, 28000, 16500, 8200, 4100, 2050, 1025};
  t.rand_write_iops = {13500, 13500, 13400, 10400, 8100, 4000, 2000, 1000, 610};
  t.seq_read_iops = t.rand_read_iops;
  t.seq_write_iops = t.rand_write_iops;
  return t;
}

TEST(MakeValueTest, DeterministicAndSized) {
  EXPECT_EQ(MakeValue("key", 10).size(), 10u);
  EXPECT_EQ(MakeValue("key", 10), MakeValue("key", 10));
  EXPECT_NE(MakeValue("key1", 16), MakeValue("key2", 16));
  EXPECT_EQ(MakeValue("abc", 3), "abc");
  EXPECT_EQ(MakeValue("abcdef", 2), "ab");
}

TEST(RawIoWorkloadTest, BackloggedWorkersIssueOps) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  iosched::IoScheduler sched(
      loop, device, std::make_unique<iosched::ExactCostModel>(WlTable()));
  sched.SetAllocation(1, 10000.0);

  RawIoSpec spec;
  spec.read_fraction = 0.5;
  spec.read_size = {4096.0, 0.0};
  spec.write_size = {4096.0, 0.0};
  spec.workers = 8;
  spec.working_set_bytes = 256 * kMiB;
  RawIoWorkload wl(loop, sched, 1, spec, 7);
  {
    sim::TaskGroup group(loop);
    wl.Start(group, 1 * kSecond);
    loop.Run();
  }
  EXPECT_GT(wl.ops_completed(), 1000u);
  const auto& stats = sched.tracker().Stats(1);
  // Roughly half reads, half writes.
  const double read_frac = static_cast<double>(stats.read_ops) /
                           static_cast<double>(stats.total_ops());
  EXPECT_NEAR(read_frac, 0.5, 0.1);
}

TEST(RawIoWorkloadTest, PureReaderIssuesOnlyReads) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  iosched::IoScheduler sched(
      loop, device, std::make_unique<iosched::ExactCostModel>(WlTable()));
  sched.SetAllocation(1, 10000.0);
  RawIoSpec spec;
  spec.read_fraction = 1.0;
  spec.workers = 4;
  spec.working_set_bytes = 256 * kMiB;
  RawIoWorkload wl(loop, sched, 1, spec, 7);
  {
    sim::TaskGroup group(loop);
    wl.Start(group, 200 * kMillisecond);
    loop.Run();
  }
  EXPECT_EQ(sched.tracker().Stats(1).write_ops, 0u);
  EXPECT_GT(sched.tracker().Stats(1).read_ops, 0u);
}

TEST(RawIoWorkloadTest, LognormalSizesVary) {
  sim::EventLoop loop;
  ssd::SsdDevice device(loop, ssd::Intel320Profile());
  device.Prefill(256 * kMiB);
  iosched::IoScheduler sched(
      loop, device, std::make_unique<iosched::ExactCostModel>(WlTable()));
  sched.SetAllocation(1, 10000.0);
  RawIoSpec spec;
  spec.read_fraction = 1.0;
  spec.read_size = {16384.0, 32768.0, 1024, 256 * 1024};
  spec.workers = 4;
  spec.working_set_bytes = 256 * kMiB;
  RawIoWorkload wl(loop, sched, 1, spec, 7);
  {
    sim::TaskGroup group(loop);
    wl.Start(group, 500 * kMillisecond);
    loop.Run();
  }
  const auto& stats = sched.tracker().Stats(1);
  // Mean op size should be near 16KB but ops must vary (chunk counts differ
  // from op counts only above 128KB; just check the mean envelope).
  const double mean = static_cast<double>(stats.read_bytes) /
                      static_cast<double>(stats.read_ops);
  EXPECT_GT(mean, 8000.0);
  EXPECT_LT(mean, 40000.0);
}

}  // namespace
}  // namespace libra::workload
