#include "src/sim/task.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/sync.h"

namespace libra::sim {
namespace {

Task<int> ReturnFortyTwo() { co_return 42; }

Task<int> AddOne(Task<int> inner) {
  const int v = co_await std::move(inner);
  co_return v + 1;
}

Task<void> RunAndStore(int* out) {
  *out = co_await ReturnFortyTwo();
  co_return;
}

TEST(TaskTest, LazyUntilAwaited) {
  bool started = false;
  auto make = [&]() -> Task<void> {
    started = true;
    co_return;
  };
  Task<void> t = make();
  EXPECT_FALSE(started);
  Detach(std::move(t));
  EXPECT_TRUE(started);
}

TEST(TaskTest, ReturnsValueThroughAwait) {
  int result = 0;
  Detach(RunAndStore(&result));
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, NestedAwaitChains) {
  int result = 0;
  auto runner = [&]() -> Task<void> {
    result = co_await AddOne(AddOne(ReturnFortyTwo()));
  };
  Detach(runner());
  EXPECT_EQ(result, 44);
}

TEST(TaskTest, MoveOnlyResult) {
  std::unique_ptr<int> out;
  auto make = []() -> Task<std::unique_ptr<int>> {
    co_return std::make_unique<int>(9);
  };
  auto runner = [&]() -> Task<void> { out = co_await make(); };
  Detach(runner());
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 9);
}

TEST(TaskTest, UnawaitedTaskDestroysCleanly) {
  // The frame must be freed without running the body.
  bool ran = false;
  {
    auto make = [&]() -> Task<void> {
      ran = true;
      co_return;
    };
    Task<void> t = make();
    (void)t;
  }
  EXPECT_FALSE(ran);
}

TEST(TaskTest, SuspendedDetachedTaskResumesViaLoop) {
  EventLoop loop;
  std::vector<int> order;
  auto worker = [&](int id, SimDuration delay) -> Task<void> {
    co_await SleepFor(loop, delay);
    order.push_back(id);
  };
  Detach(worker(2, 20));
  Detach(worker(1, 10));
  Detach(worker(3, 30));
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30);
}

TEST(TaskTest, AwaiterPropagatesThroughSuspension) {
  EventLoop loop;
  auto leaf = [&]() -> Task<std::string> {
    co_await SleepFor(loop, 5);
    co_return std::string("done");
  };
  std::string result;
  auto root = [&]() -> Task<void> { result = co_await leaf(); };
  Detach(root());
  EXPECT_TRUE(result.empty());  // still suspended on the timer
  loop.Run();
  EXPECT_EQ(result, "done");
}

TEST(TaskTest, ManySequentialAwaitsDoNotOverflowStack) {
  EventLoop loop;
  auto step = [&]() -> Task<int> { co_return 1; };
  int total = 0;
  auto root = [&]() -> Task<void> {
    for (int i = 0; i < 100000; ++i) {
      total += co_await step();
    }
  };
  Detach(root());
  loop.Run();
  EXPECT_EQ(total, 100000);
}

TEST(TaskTest, TaskGroupJoinsAllChildren) {
  EventLoop loop;
  TaskGroup group(loop);
  int done = 0;
  auto worker = [&](SimDuration d) -> Task<void> {
    co_await SleepFor(loop, d);
    ++done;
  };
  for (int i = 1; i <= 10; ++i) {
    group.Spawn(worker(i * 10));
  }
  bool joined = false;
  auto joiner = [&]() -> Task<void> {
    co_await group.Join();
    joined = true;
    EXPECT_EQ(done, 10);
  };
  Detach(joiner());
  EXPECT_FALSE(joined);
  loop.Run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskTest, TaskGroupJoinWhenAlreadyEmpty) {
  EventLoop loop;
  TaskGroup group(loop);
  bool joined = false;
  auto joiner = [&]() -> Task<void> {
    co_await group.Join();
    joined = true;
  };
  Detach(joiner());
  loop.Run();
  EXPECT_TRUE(joined);
}

}  // namespace
}  // namespace libra::sim
